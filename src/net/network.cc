#include "net/network.h"

#include <algorithm>
#include <string>
#include <utility>

#include "metrics/registry.h"

namespace ignem {

Network::Network(Simulator& sim, std::size_t node_count, NetworkProfile profile)
    : sim_(sim),
      profile_(profile),
      topology_(node_count, profile.rack_count),
      reachability_(node_count) {
  IGNEM_CHECK(node_count > 0);
  BandwidthProfile bw;
  bw.sequential_bw = profile.nic_bw;
  bw.degradation = profile.degradation;
  bw.per_stream_cap = profile.per_flow_cap;
  nics_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    nics_.push_back(std::make_unique<SharedBandwidthResource>(
        sim, "nic/" + std::to_string(i), bw));
  }
  if (profile.rack_uplink_bw > 0.0) {
    BandwidthProfile uplink;
    uplink.sequential_bw = profile.rack_uplink_bw;
    uplink.degradation = profile.degradation;
    uplink.per_stream_cap = profile.rack_uplink_bw;
    uplinks_.reserve(static_cast<std::size_t>(topology_.rack_count()));
    for (int r = 0; r < topology_.rack_count(); ++r) {
      uplinks_.push_back(std::make_unique<SharedBandwidthResource>(
          sim, "uplink/" + std::to_string(r), uplink));
    }
  }
}

SharedBandwidthResource& Network::rack_uplink(int rack) {
  IGNEM_CHECK(rack >= 0 && static_cast<std::size_t>(rack) < uplinks_.size());
  return *uplinks_[static_cast<std::size_t>(rack)];
}

SharedBandwidthResource& Network::nic(NodeId node) {
  IGNEM_CHECK(node.valid() &&
              static_cast<std::size_t>(node.value()) < nics_.size());
  return *nics_[static_cast<std::size_t>(node.value())];
}

void Network::set_metrics_registry(MetricsRegistry* registry) {
  severed_bytes_ =
      registry == nullptr ? nullptr : &registry->histogram("net.severed_bytes");
}

void Network::transfer(NodeId src, NodeId dst, Bytes bytes,
                       Callback on_complete) {
  transfer(src, dst, bytes, std::move(on_complete), nullptr);
}

void Network::transfer(NodeId src, NodeId dst, Bytes bytes,
                       Callback on_complete, Callback on_severed) {
  IGNEM_CHECK(bytes >= 0);
  if (src == dst) {
    // Intra-node handoff: no NIC involved (and never severable — a node
    // always reaches itself).
    sim_.schedule(Duration::micros(10), std::move(on_complete),
                  EventClass::kTransfer);
    return;
  }
  // Cross-rack traffic also traverses the source rack's oversubscribed
  // uplink when the profile models one: NIC first (per-node egress), then
  // the shared uplink channel in series. Intra-rack (or uplink-less)
  // fabrics keep the historical single-resource path.
  const bool via_uplink =
      has_rack_uplinks() && !topology_.same_rack(src, dst);
  if (sever_ && on_severed != nullptr) {
    start_severable(src, dst, bytes, via_uplink, std::move(on_complete),
                    std::move(on_severed));
    return;
  }
  sim_.schedule(profile_.rtt,
                [this, src, bytes, via_uplink,
                 cb = std::move(on_complete)]() mutable {
                  if (!via_uplink) {
                    nic(src).start(bytes, std::move(cb));
                    return;
                  }
                  const int rack = topology_.rack_of(src);
                  nic(src).start(bytes,
                                 [this, rack, bytes, cb = std::move(cb)]() mutable {
                                   rack_uplink(rack).start(bytes, std::move(cb));
                                 });
                },
                EventClass::kTransfer);
}

void Network::start_severable(NodeId src, NodeId dst, Bytes bytes,
                              bool via_uplink, Callback on_complete,
                              Callback on_severed) {
  sim_.schedule(
      profile_.rtt,
      [this, src, dst, bytes, via_uplink, cb = std::move(on_complete),
       sev = std::move(on_severed)]() mutable {
        if (!reachable(src, dst)) {
          // The cut landed during the propagation delay: nothing moved.
          record_severed(dst, src.value(), bytes, 0);
          sev();
          return;
        }
        const std::uint64_t id = next_flight_id_++;
        InFlight flight;
        flight.src = src;
        flight.dst = dst;
        flight.bytes = bytes;
        flight.resource = &nic(src);
        flight.final_stage = !via_uplink;
        flight.on_severed = std::move(sev);
        auto [it, inserted] = flights_.emplace(id, std::move(flight));
        InFlight& f = it->second;
        if (!via_uplink) {
          f.handle = f.resource->start(bytes, [this, id,
                                               cb = std::move(cb)]() mutable {
            flights_.erase(id);
            cb();
          });
          return;
        }
        const int rack = topology_.rack_of(src);
        f.handle = f.resource->start(
            bytes, [this, id, rack, bytes, cb = std::move(cb)]() mutable {
              // NIC leg drained; hop onto the shared uplink. The flight is
              // still registered (a sever would have aborted this callback).
              InFlight& fl = flights_.at(id);
              fl.resource = &rack_uplink(rack);
              fl.final_stage = true;
              fl.handle =
                  fl.resource->start(bytes, [this, id,
                                             cb = std::move(cb)]() mutable {
                    flights_.erase(id);
                    cb();
                  });
            });
      },
      EventClass::kTransfer);
}

void Network::ingress_transfer(NodeId dst, Bytes bytes, Callback on_complete) {
  IGNEM_CHECK(bytes >= 0);
  sim_.schedule(profile_.rtt,
                [this, dst, bytes, cb = std::move(on_complete)]() mutable {
                  nic(dst).start(bytes, std::move(cb));
                },
                EventClass::kTransfer);
}

void Network::ingress_transfer(NodeId dst, std::vector<IngressShare> shares,
                               IngressCallback on_done) {
  sim_.schedule(
      profile_.rtt,
      [this, dst, shares = std::move(shares),
       cb = std::move(on_done)]() mutable {
        // Gate each contributing share at stream start; admitted bytes move
        // as one receiver-NIC stream (the fan-in chokepoint), blocked ones
        // go straight back to the caller for retry after the heal.
        Bytes admitted = 0;
        std::vector<IngressShare> live;
        std::vector<IngressShare> blocked;
        for (IngressShare& share : shares) {
          if (share.bytes <= 0) continue;
          if (reachable(share.source, dst)) {
            admitted += share.bytes;
            live.push_back(share);
          } else {
            blocked.push_back(share);
          }
        }
        if (admitted == 0) {
          if (blocked.empty()) {
            // Nothing to move at all: run the zero-byte stream the legacy
            // overload would have, so the event sequence is unchanged.
            nic(dst).start(0, [cb = std::move(cb)]() mutable {
              cb(0, {});
            });
          } else {
            cb(0, std::move(blocked));
          }
          return;
        }
        if (!sever_) {
          nic(dst).start(admitted,
                         [cb = std::move(cb), admitted,
                          blocked = std::move(blocked)]() mutable {
                           cb(admitted, std::move(blocked));
                         });
          return;
        }
        const std::uint64_t id = next_flight_id_++;
        InFlight flight;
        flight.src = dst;
        flight.dst = dst;
        flight.bytes = admitted;
        flight.resource = &nic(dst);
        flight.ingress = true;
        flight.shares = std::move(live);
        flight.unserved = std::move(blocked);
        flight.on_ingress = std::move(cb);
        auto [it, inserted] = flights_.emplace(id, std::move(flight));
        InFlight& f = it->second;
        f.handle = f.resource->start(admitted, [this, id]() mutable {
          auto fit = flights_.find(id);
          IngressCallback done = std::move(fit->second.on_ingress);
          const Bytes arrived = fit->second.bytes;
          std::vector<IngressShare> unserved = std::move(fit->second.unserved);
          flights_.erase(fit);
          done(arrived, std::move(unserved));
        });
      },
      EventClass::kTransfer);
}

void Network::sever_partitioned_transfers() {
  if (!sever_ || flights_.empty()) return;
  std::vector<std::uint64_t> victims;
  for (const auto& [id, f] : flights_) {
    if (f.ingress) {
      for (const IngressShare& share : f.shares) {
        if (!reachable(share.source, f.dst)) {
          victims.push_back(id);
          break;
        }
      }
    } else if (!reachable(f.src, f.dst)) {
      victims.push_back(id);
    }
  }
  // Collect callbacks before firing any: a severed-callback may start new
  // transfers (retries) on this network.
  std::vector<std::function<void()>> fire;
  fire.reserve(victims.size());
  for (const std::uint64_t id : victims) {
    auto it = flights_.find(id);
    InFlight f = std::move(it->second);
    flights_.erase(it);
    const std::int64_t stage_remaining = f.resource->remaining_bytes(f.handle);
    IGNEM_CHECK(stage_remaining >= 0);
    const bool aborted = f.resource->abort(f.handle);
    IGNEM_CHECK(aborted);
    // Only the final serial stage delivers toward dst; bytes progressed on
    // an earlier leg (source NIC before the rack uplink) never crossed the
    // cut and are refunded whole.
    const Bytes progressed =
        f.final_stage ? std::min(f.bytes, f.bytes - Bytes(stage_remaining))
                      : Bytes(0);
    const Bytes refunded = f.bytes - progressed;
    if (f.ingress) {
      // Attribute served bytes to admitted shares in order; the exact
      // remainder comes back as unserved shares for retry. Conservation:
      // progressed + sum(unserved) == requested total.
      Bytes left = progressed;
      std::vector<IngressShare> unserved = std::move(f.unserved);
      for (const IngressShare& share : f.shares) {
        const Bytes got = std::min(share.bytes, left);
        left -= got;
        if (share.bytes > got) {
          unserved.push_back({share.source, share.bytes - got});
        }
      }
      record_severed(f.dst, -1, refunded, progressed);
      fire.push_back([done = std::move(f.on_ingress), progressed,
                      unserved = std::move(unserved)]() mutable {
        done(progressed, std::move(unserved));
      });
    } else {
      record_severed(f.dst, f.src.value(), refunded, progressed);
      fire.push_back(std::move(f.on_severed));
    }
  }
  for (auto& callback : fire) callback();
}

void Network::record_severed(NodeId dst, std::int64_t detail, Bytes refunded,
                             Bytes progressed) {
  ++transfers_severed_;
  if (severed_bytes_ != nullptr) severed_bytes_->record(refunded);
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kTransferSevered, dst, BlockId::invalid(),
                 JobId::invalid(), refunded, detail,
                 static_cast<double>(progressed));
  }
}

Bytes Network::total_bytes_sent(NodeId node) const {
  IGNEM_CHECK(node.valid() &&
              static_cast<std::size_t>(node.value()) < nics_.size());
  return nics_[static_cast<std::size_t>(node.value())]->total_bytes_completed();
}

}  // namespace ignem
