#include "net/network.h"

#include <string>

namespace ignem {

Network::Network(Simulator& sim, std::size_t node_count, NetworkProfile profile)
    : sim_(sim),
      profile_(profile),
      topology_(node_count, profile.rack_count),
      reachability_(node_count) {
  IGNEM_CHECK(node_count > 0);
  BandwidthProfile bw;
  bw.sequential_bw = profile.nic_bw;
  bw.degradation = profile.degradation;
  bw.per_stream_cap = profile.per_flow_cap;
  nics_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    nics_.push_back(std::make_unique<SharedBandwidthResource>(
        sim, "nic/" + std::to_string(i), bw));
  }
  if (profile.rack_uplink_bw > 0.0) {
    BandwidthProfile uplink;
    uplink.sequential_bw = profile.rack_uplink_bw;
    uplink.degradation = profile.degradation;
    uplink.per_stream_cap = profile.rack_uplink_bw;
    uplinks_.reserve(static_cast<std::size_t>(topology_.rack_count()));
    for (int r = 0; r < topology_.rack_count(); ++r) {
      uplinks_.push_back(std::make_unique<SharedBandwidthResource>(
          sim, "uplink/" + std::to_string(r), uplink));
    }
  }
}

SharedBandwidthResource& Network::rack_uplink(int rack) {
  IGNEM_CHECK(rack >= 0 && static_cast<std::size_t>(rack) < uplinks_.size());
  return *uplinks_[static_cast<std::size_t>(rack)];
}

SharedBandwidthResource& Network::nic(NodeId node) {
  IGNEM_CHECK(node.valid() &&
              static_cast<std::size_t>(node.value()) < nics_.size());
  return *nics_[static_cast<std::size_t>(node.value())];
}

void Network::transfer(NodeId src, NodeId dst, Bytes bytes,
                       Callback on_complete) {
  IGNEM_CHECK(bytes >= 0);
  if (src == dst) {
    // Intra-node handoff: no NIC involved.
    sim_.schedule(Duration::micros(10), std::move(on_complete),
                  EventClass::kTransfer);
    return;
  }
  // Cross-rack traffic also traverses the source rack's oversubscribed
  // uplink when the profile models one: NIC first (per-node egress), then
  // the shared uplink channel in series. Intra-rack (or uplink-less)
  // fabrics keep the historical single-resource path.
  const bool via_uplink =
      has_rack_uplinks() && !topology_.same_rack(src, dst);
  sim_.schedule(profile_.rtt,
                [this, src, bytes, via_uplink,
                 cb = std::move(on_complete)]() mutable {
                  if (!via_uplink) {
                    nic(src).start(bytes, std::move(cb));
                    return;
                  }
                  const int rack = topology_.rack_of(src);
                  nic(src).start(bytes,
                                 [this, rack, bytes, cb = std::move(cb)]() mutable {
                                   rack_uplink(rack).start(bytes, std::move(cb));
                                 });
                },
                EventClass::kTransfer);
}

void Network::ingress_transfer(NodeId dst, Bytes bytes, Callback on_complete) {
  IGNEM_CHECK(bytes >= 0);
  sim_.schedule(profile_.rtt,
                [this, dst, bytes, cb = std::move(on_complete)]() mutable {
                  nic(dst).start(bytes, std::move(cb));
                },
                EventClass::kTransfer);
}

Bytes Network::total_bytes_sent(NodeId node) const {
  IGNEM_CHECK(node.valid() &&
              static_cast<std::size_t>(node.value()) < nics_.size());
  return nics_[static_cast<std::size_t>(node.value())]->total_bytes_completed();
}

}  // namespace ignem
