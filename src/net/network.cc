#include "net/network.h"

#include <string>

namespace ignem {

Network::Network(Simulator& sim, std::size_t node_count, NetworkProfile profile)
    : sim_(sim), profile_(profile) {
  IGNEM_CHECK(node_count > 0);
  BandwidthProfile bw;
  bw.sequential_bw = profile.nic_bw;
  bw.degradation = profile.degradation;
  bw.per_stream_cap = profile.per_flow_cap;
  nics_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    nics_.push_back(std::make_unique<SharedBandwidthResource>(
        sim, "nic/" + std::to_string(i), bw));
  }
}

SharedBandwidthResource& Network::nic(NodeId node) {
  IGNEM_CHECK(node.valid() &&
              static_cast<std::size_t>(node.value()) < nics_.size());
  return *nics_[static_cast<std::size_t>(node.value())];
}

void Network::transfer(NodeId src, NodeId dst, Bytes bytes,
                       Callback on_complete) {
  IGNEM_CHECK(bytes >= 0);
  if (src == dst) {
    // Intra-node handoff: no NIC involved.
    sim_.schedule(Duration::micros(10), std::move(on_complete),
                  EventClass::kTransfer);
    return;
  }
  sim_.schedule(profile_.rtt,
                [this, src, bytes, cb = std::move(on_complete)]() mutable {
                  nic(src).start(bytes, std::move(cb));
                },
                EventClass::kTransfer);
}

void Network::ingress_transfer(NodeId dst, Bytes bytes, Callback on_complete) {
  IGNEM_CHECK(bytes >= 0);
  sim_.schedule(profile_.rtt,
                [this, dst, bytes, cb = std::move(on_complete)]() mutable {
                  nic(dst).start(bytes, std::move(cb));
                },
                EventClass::kTransfer);
}

Bytes Network::total_bytes_sent(NodeId node) const {
  IGNEM_CHECK(node.valid() &&
              static_cast<std::size_t>(node.value()) < nics_.size());
  return nics_[static_cast<std::size_t>(node.value())]->total_bytes_completed();
}

}  // namespace ignem
