#include "net/rpc.h"

#include <algorithm>
#include <utility>

namespace ignem {

const char* rpc_outcome_name(RpcOutcome outcome) {
  switch (outcome) {
    case RpcOutcome::kOk: return "ok";
    case RpcOutcome::kTimeout: return "timeout";
    case RpcOutcome::kUnreachable: return "unreachable";
  }
  return "?";
}

RpcRouter::RpcRouter(Simulator& sim, Network& network, RpcConfig config)
    : sim_(sim), network_(network), config_(config) {
  IGNEM_CHECK(config_.control_node.valid());
  IGNEM_CHECK(config_.latency > Duration::zero());
  IGNEM_CHECK(config_.max_retries >= 0);
}

Duration RpcRouter::backoff(int attempt_no) const {
  // min(base * 2^(attempts so far - 1), cap) — the same schedule the Ignem
  // master has always used for migration reroutes.
  Duration d = config_.backoff_base;
  for (int i = 1; i < attempt_no && d < config_.backoff_cap; ++i) d = d * 2.0;
  return std::min(d, config_.backoff_cap);
}

void RpcRouter::oneway(NodeId from, NodeId to, Action deliver) {
  ++stats_.oneways;
  if (!network_.reachable(from, to)) {
    ++stats_.oneways_dropped;
    return;
  }
  sim_.schedule(config_.latency,
                [this, from, to, deliver = std::move(deliver)]() mutable {
                  // A cut that landed while the datagram was in flight eats
                  // it; the sender never learns.
                  if (!network_.reachable(from, to)) {
                    ++stats_.oneways_dropped;
                    return;
                  }
                  deliver();
                },
                EventClass::kRpc);
}

void RpcRouter::call(NodeId from, NodeId to, Action deliver,
                     FailureCallback on_fail) {
  ++stats_.calls;
  attempt(from, to, std::move(deliver), std::move(on_fail), sim_.now(), 1);
}

void RpcRouter::attempt(NodeId from, NodeId to, Action deliver,
                        FailureCallback on_fail, SimTime start,
                        int attempt_no) {
  sim_.schedule(
      config_.latency,
      [this, from, to, deliver = std::move(deliver),
       on_fail = std::move(on_fail), start, attempt_no]() mutable {
        if (network_.reachable(from, to)) {
          ++stats_.delivered;
          deliver();
          return;
        }
        if (attempt_no > config_.max_retries) {
          fail(to, RpcOutcome::kUnreachable, attempt_no, on_fail);
          return;
        }
        const Duration wait = backoff(attempt_no);
        if (sim_.now() + wait + config_.latency - start > config_.deadline) {
          fail(to, RpcOutcome::kTimeout, attempt_no, on_fail);
          return;
        }
        ++stats_.retries;
        sim_.schedule(wait,
                      [this, from, to, deliver = std::move(deliver),
                       on_fail = std::move(on_fail), start,
                       attempt_no]() mutable {
                        attempt(from, to, std::move(deliver),
                                std::move(on_fail), start, attempt_no + 1);
                      },
                      EventClass::kRetry);
      },
      EventClass::kRpc);
}

void RpcRouter::fail(NodeId to, RpcOutcome outcome, int attempts,
                     const FailureCallback& on_fail) {
  if (outcome == RpcOutcome::kTimeout) {
    ++stats_.timeouts;
  } else {
    ++stats_.unreachable;
  }
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kRpcTimeout, to, BlockId::invalid(),
                 JobId::invalid(), attempts,
                 static_cast<std::int64_t>(outcome), 0.0);
  }
  if (on_fail != nullptr) on_fail(outcome);
}

}  // namespace ignem
