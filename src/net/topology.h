// Rack topology: which rack each node lives in.
//
// Uses the same round-robin assignment as the NameNode's placement policy
// (node % rack_count) so "off-rack" means the same thing to placement,
// repair targeting, and the network fabric. rack_count == 1 collapses to
// the flat single-switch cluster every earlier experiment assumed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace ignem {

class Topology {
 public:
  Topology(std::size_t node_count, int rack_count)
      : node_count_(node_count),
        rack_count_(rack_count < 1 ? 1 : rack_count) {
    IGNEM_CHECK(node_count > 0);
  }

  std::size_t node_count() const { return node_count_; }
  int rack_count() const { return rack_count_; }

  int rack_of(NodeId node) const {
    IGNEM_CHECK(node.valid() &&
                static_cast<std::size_t>(node.value()) < node_count_);
    return static_cast<int>(node.value() % rack_count_);
  }

  bool same_rack(NodeId a, NodeId b) const {
    return rack_of(a) == rack_of(b);
  }

  /// All nodes in `rack`, in ascending node order.
  std::vector<NodeId> rack_members(int rack) const {
    IGNEM_CHECK(rack >= 0 && rack < rack_count_);
    std::vector<NodeId> members;
    for (std::size_t i = 0; i < node_count_; ++i) {
      NodeId node(static_cast<std::int64_t>(i));
      if (rack_of(node) == rack) members.push_back(node);
    }
    return members;
  }

 private:
  std::size_t node_count_;
  int rack_count_;
};

}  // namespace ignem
