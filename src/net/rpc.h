// Routed control-plane RPCs.
//
// PR 9 gave the data plane a reachability matrix, but control traffic still
// cheated: NameNode / ResourceManager / Ignem-master exchanges were direct
// calls with a fixed latency that succeeded even across a partition. The
// RpcRouter makes the control plane a first-class fault domain: the masters
// live on a rack-resident control node, and every master<->slave control
// RPC — heartbeats, container grants, migration commands, repair orders,
// rejoin block reports — pays one RPC latency per attempt, is delivered
// only if the reachability matrix permits it at delivery time, and retries
// with capped exponential backoff until a deadline or retry budget runs
// out. Callers receive a typed outcome and degrade gracefully (jobs keep
// running on cached/local data, migrations queue, repairs pause) instead of
// operating on ghost state across the cut.
//
// The router only exists when TestbedConfig::control_plane.routed is on;
// components keep their historical direct-call paths when it is absent, so
// default-off runs are event-for-event identical.
#pragma once

#include <cstdint>
#include <functional>

#include "common/ids.h"
#include "common/units.h"
#include "net/network.h"
#include "obs/trace_recorder.h"
#include "sim/simulator.h"

namespace ignem {

/// How a reliable control RPC resolved.
enum class RpcOutcome : std::uint8_t {
  kOk = 0,           ///< Delivered to the callee.
  kTimeout = 1,      ///< Deadline expired while retrying.
  kUnreachable = 2,  ///< Retry budget exhausted, every attempt found a cut.
};

const char* rpc_outcome_name(RpcOutcome outcome);

struct RpcConfig {
  /// Where the NameNode/RM/IgnemMaster live; one endpoint of every call.
  NodeId control_node = NodeId(0);
  /// One-way latency paid by every attempt.
  Duration latency = Duration::millis(1);
  /// Reliable calls give up (kTimeout) once the next attempt could not
  /// start before start + deadline.
  Duration deadline = Duration::seconds(2.0);
  /// Attempts beyond the first (kUnreachable once exhausted).
  int max_retries = 4;
  Duration backoff_base = Duration::millis(100);
  Duration backoff_cap = Duration::seconds(2.0);
};

struct RpcStats {
  std::uint64_t calls = 0;      ///< Reliable calls issued.
  std::uint64_t delivered = 0;  ///< Reliable calls that reached the callee.
  std::uint64_t retries = 0;    ///< Re-attempts after an unreachable send.
  std::uint64_t timeouts = 0;          ///< Terminal kTimeout outcomes.
  std::uint64_t unreachable = 0;       ///< Terminal kUnreachable outcomes.
  std::uint64_t oneways = 0;           ///< Datagrams sent (heartbeats).
  std::uint64_t oneways_dropped = 0;   ///< Datagrams lost to a cut.
};

class RpcRouter {
 public:
  using Action = std::function<void()>;
  /// Invoked only when a reliable call terminally fails (never with kOk);
  /// success is observed by `deliver` running on the callee.
  using FailureCallback = std::function<void(RpcOutcome)>;

  RpcRouter(Simulator& sim, Network& network, RpcConfig config);

  RpcRouter(const RpcRouter&) = delete;
  RpcRouter& operator=(const RpcRouter&) = delete;

  const RpcConfig& config() const { return config_; }
  NodeId control_node() const { return config_.control_node; }
  bool can_reach(NodeId from, NodeId to) const {
    return network_.reachable(from, to);
  }

  /// Fire-and-forget datagram (heartbeats): pays one latency; silently
  /// dropped (and counted) when the link is cut at send or delivery time.
  /// A lost beat is just lost — the next interval resends.
  void oneway(NodeId from, NodeId to, Action deliver);

  /// Reliable call: `deliver` runs on the callee after one latency when the
  /// matrix permits; otherwise the router retries with capped exponential
  /// backoff until the deadline or retry budget runs out, then reports the
  /// typed outcome through `on_fail` (which may be null) and emits
  /// kRpcTimeout.
  void call(NodeId from, NodeId to, Action deliver,
            FailureCallback on_fail = nullptr);

  const RpcStats& stats() const { return stats_; }

  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 private:
  Duration backoff(int attempt) const;
  void attempt(NodeId from, NodeId to, Action deliver, FailureCallback on_fail,
               SimTime start, int attempt_no);
  void fail(NodeId to, RpcOutcome outcome, int attempts,
            const FailureCallback& on_fail);

  Simulator& sim_;
  Network& network_;
  RpcConfig config_;
  RpcStats stats_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace ignem
