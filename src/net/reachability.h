// Who can currently talk to whom.
//
// Network partitions are binary, not gradual: a partitioned transfer or
// heartbeat is dropped/stalled, never merely slowed (that is what the
// degradation faults model). The matrix supports three fault shapes,
// all refcounted so overlapping injection windows compose:
//
//   - per-node outbound blocks (node can send to nobody),
//   - per-node inbound blocks (nobody can send to the node),
//   - group splits keyed by an id (e.g. a rack): members of the group
//     cannot exchange traffic with non-members, but traffic inside the
//     group — and inside the rest of the cluster — still flows.
//
// reachable(src, dst) is the conjunction of all active blocks; a node can
// always reach itself. The common fully-connected case is a single integer
// compare so read paths can consult the matrix unconditionally without
// perturbing fault-free traces.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace ignem {

class ReachabilityMatrix {
 public:
  explicit ReachabilityMatrix(std::size_t node_count)
      : outbound_(node_count, 0), inbound_(node_count, 0) {
    IGNEM_CHECK(node_count > 0);
  }

  std::size_t node_count() const { return outbound_.size(); }

  /// True when no partition of any kind is active.
  bool fully_connected() const { return active_blocks_ == 0; }

  bool reachable(NodeId src, NodeId dst) const {
    check_node(src);
    check_node(dst);
    if (active_blocks_ == 0 || src == dst) return true;
    const auto s = static_cast<std::size_t>(src.value());
    const auto d = static_cast<std::size_t>(dst.value());
    if (outbound_[s] > 0 || inbound_[d] > 0) return false;
    for (const auto& [key, group] : groups_) {
      (void)key;
      if (group.member[s] != group.member[d]) return false;
    }
    return true;
  }

  void block_outbound(NodeId node) { bump(outbound_, node, +1); }
  void unblock_outbound(NodeId node) { bump(outbound_, node, -1); }
  void block_inbound(NodeId node) { bump(inbound_, node, +1); }
  void unblock_inbound(NodeId node) { bump(inbound_, node, -1); }

  /// Splits `members` away from the rest of the cluster under `key`
  /// (typically a rack id). Re-blocking an active key deepens its
  /// refcount; membership must match the first block.
  void block_group(std::int64_t key, const std::vector<NodeId>& members) {
    auto it = groups_.find(key);
    if (it != groups_.end()) {
      ++it->second.depth;
      ++active_blocks_;
      return;
    }
    Group group;
    group.member.assign(node_count(), false);
    for (NodeId node : members) {
      check_node(node);
      group.member[static_cast<std::size_t>(node.value())] = true;
    }
    group.depth = 1;
    groups_.emplace(key, std::move(group));
    ++active_blocks_;
  }

  void unblock_group(std::int64_t key) {
    auto it = groups_.find(key);
    IGNEM_CHECK(it != groups_.end());
    IGNEM_CHECK(active_blocks_ > 0);
    --active_blocks_;
    if (--it->second.depth == 0) groups_.erase(it);
  }

 private:
  struct Group {
    std::vector<bool> member;
    int depth = 0;
  };

  void check_node(NodeId node) const {
    IGNEM_CHECK(node.valid() &&
                static_cast<std::size_t>(node.value()) < outbound_.size());
  }

  void bump(std::vector<int>& side, NodeId node, int delta) {
    check_node(node);
    int& depth = side[static_cast<std::size_t>(node.value())];
    depth += delta;
    active_blocks_ += delta;
    IGNEM_CHECK(depth >= 0);
    IGNEM_CHECK(active_blocks_ >= 0);
  }

  std::vector<int> outbound_;  ///< Refcounted "node sends to nobody" blocks.
  std::vector<int> inbound_;   ///< Refcounted "nobody sends to node" blocks.
  std::map<std::int64_t, Group> groups_;  ///< Keyed splits (rack partitions).
  int active_blocks_ = 0;  ///< Sum of all depths; 0 == fully connected.
};

}  // namespace ignem
