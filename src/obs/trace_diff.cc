#include "obs/trace_diff.h"

#include <sstream>

#include "obs/trace_recorder.h"

namespace ignem {

namespace {

bool same_event(const TraceEvent& a, const TraceEvent& b) {
  return a.seq == b.seq && a.time == b.time && a.type == b.type &&
         a.node == b.node && a.block == b.block && a.job == b.job &&
         a.bytes == b.bytes && a.detail == b.detail && a.value == b.value;
}

std::string render(const TraceEvent& event) {
  std::ostringstream os;
  TraceRecorder::append_jsonl(os, event);
  std::string line = os.str();
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

}  // namespace

TraceDiffResult diff_traces(const std::vector<TraceEvent>& a,
                            const std::vector<TraceEvent>& b) {
  TraceDiffResult result;
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (same_event(a[i], b[i])) continue;
    result.identical = false;
    result.first_divergence = i;
    std::ostringstream os;
    os << "event " << i << " differs:\n  a: " << render(a[i])
       << "\n  b: " << render(b[i]);
    result.description = os.str();
    return result;
  }
  if (a.size() != b.size()) {
    result.identical = false;
    result.first_divergence = common;
    std::ostringstream os;
    os << "traces agree for " << common << " events, then lengths differ ("
       << a.size() << " vs " << b.size() << ")";
    if (common < a.size()) os << "\n  a continues: " << render(a[common]);
    if (common < b.size()) os << "\n  b continues: " << render(b[common]);
    result.description = os.str();
  }
  return result;
}

TraceDiffResult diff_jsonl(const std::string& a, const std::string& b) {
  TraceDiffResult result;
  const std::vector<std::string> la = split_lines(a);
  const std::vector<std::string> lb = split_lines(b);
  const std::size_t common = std::min(la.size(), lb.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (la[i] == lb[i]) continue;
    result.identical = false;
    result.first_divergence = i;
    std::ostringstream os;
    os << "line " << (i + 1) << " differs:\n  a: " << la[i]
       << "\n  b: " << lb[i];
    result.description = os.str();
    return result;
  }
  if (la.size() != lb.size()) {
    result.identical = false;
    result.first_divergence = common;
    std::ostringstream os;
    os << "traces agree for " << common << " lines, then lengths differ ("
       << la.size() << " vs " << lb.size() << ")";
    result.description = os.str();
  }
  return result;
}

}  // namespace ignem
