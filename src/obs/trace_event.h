// Typed simulation-trace events.
//
// Every component on the hot path can emit structured events into a
// TraceRecorder: block read start/end, replica add, migration
// enqueue/start/complete, container allocate/release, cache lock/unlock,
// bandwidth rate changes. An event is a flat POD so that recording is one
// vector push and hashing/serialization never chase pointers. The same
// stream feeds three consumers: the trace hash (bit-for-bit determinism
// checks), the InvariantChecker (live conservation laws), and the
// JSONL/binary sinks (golden traces, offline diffing).
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/units.h"

namespace ignem {

enum class TraceEventType : std::uint8_t {
  // Simulation kernel.
  kSimRunStart,       ///< run_until() entered; detail = events dispatched so far.
  kSimRunEnd,         ///< run_until() returned; detail = events dispatched.
  // Storage devices and bandwidth channels.
  kDeviceReadStart,   ///< bytes = request size.
  kDeviceReadEnd,     ///< bytes = request size.
  kDeviceWriteStart,  ///< bytes = request size.
  kDeviceWriteEnd,    ///< bytes = request size.
  kBandwidthChange,   ///< detail = active streams, value = per-stream rate,
                      ///< bytes = channel sequential capacity (B/s).
  // Locked-page pool (buffer cache).
  kCacheInit,         ///< bytes = pool capacity.
  kCacheLock,         ///< bytes = block size, detail = pool used after.
  kCacheUnlock,       ///< bytes = block size, detail = pool used after.
  kCacheReserve,      ///< bytes = reservation, detail = pool used after.
  kCacheCommit,       ///< bytes = block size, detail = pool used after.
  kCacheCancel,       ///< bytes = reservation, detail = pool used after.
  kCacheHit,          ///< block served from the locked pool.
  kCacheMiss,         ///< block served from the primary device.
  // DFS namespace and read path.
  kFileCreate,        ///< bytes = file size, detail = block count.
  kReplicaAdd,        ///< node gained a replica of block; bytes = block size.
  kNodeDead,          ///< node marked dead in the namespace.
  kNodeAlive,         ///< node marked alive again.
  kBlockReadStart,    ///< bytes = block size.
  kBlockReadEnd,      ///< bytes = block size, detail = 1 if served from memory.
  kRepairStart,       ///< re-replication copy began; node = source,
                      ///< detail = target node id.
  kRepairComplete,    ///< node = target that gained the replica.
  // Cluster scheduler.
  kJobRegister,
  kJobComplete,
  kContainerAllocate, ///< node granted a container to job.
  kContainerRelease,  ///< node got a slot back.
  // Ignem master/slave and the migration queue.
  kMigrateRequest,    ///< client migrate RPC; bytes = job input bytes,
                      ///< detail = file count.
  kEvictRequest,      ///< client evict RPC; detail = file count.
  kMigrationEnqueue,  ///< detail = queue depth after push.
  kMigrationDequeue,  ///< detail = queue depth after pop.
  kMigrationDrop,     ///< queued entry erased (job done / missed read).
  kMigrationStart,    ///< slave began paging the block in.
  kMigrationComplete, ///< block is memory-resident.
  kEviction,          ///< reference list drained; block unlocked.
  kHotPromote,        ///< hot-data baseline promoted block;
                      ///< detail = access count at promotion.
  // Fault injection and failure detection (src/fault). Fault-free runs
  // never emit these, so pinned trace hashes are unaffected.
  kFaultNodeCrash,      ///< whole server (DataNode + slave process) crashed.
  kFaultMasterCrash,    ///< Ignem master process crashed.
  kFaultSlaveCrash,     ///< Ignem slave process bounced (disk data survives).
  kFaultDiskFailStop,   ///< primary device stopped serving IO.
  kFaultDiskFailSlow,   ///< gray failure began; detail = injected hog streams.
  kFaultNetworkDegrade, ///< NIC contention window began; detail = hog streams.
  kFaultHeartbeatDelay, ///< node's heartbeats suppressed (process still runs).
  kFaultDetectedDead,   ///< a detector declared node dead after missed
                        ///< heartbeats; detail = 0 NameNode, 1 ResourceManager.
  kRecoverNodeRestart,  ///< crashed server's processes are back up.
  kRecoverNodeRejoin,   ///< detector readmitted a beating node;
                        ///< detail = 0 NameNode, 1 ResourceManager.
  kRecoverMasterRestart,///< replacement master serving requests.
  kRecoverSlaveRestart, ///< slave process restarted with empty state.
  kRecoverDisk,         ///< disk fault window (fail-stop or fail-slow) ended.
  kRecoverNetwork,      ///< NIC contention window ended.
  kRecoverHeartbeat,    ///< heartbeat suppression ended.
  kMigrationRetry,      ///< master rerouted a migration off a dead node;
                        ///< detail = retry attempt number.
  // Data-integrity plane (src/integrity). Only corruption injection or an
  // enabled scrubber emits these, so pinned trace hashes are unaffected.
  kFaultBlockCorrupt,   ///< silent bit-rot injected; bytes = block size,
                        ///< detail = 0 disk replica, 1 cached copy.
  kScrub,               ///< scrubber verified a stored block;
                        ///< detail = 1 if the checksum pass failed.
  kBlockReadCorrupt,    ///< read completed but the checksum failed; bytes =
                        ///< block size, detail = 1 if served from memory.
  kCorruptionDetected,  ///< integrity manager accepted a corruption report;
                        ///< bytes = block size, detail = source (0 read,
                        ///< 1 scrub, 2 migration), value = 1 if cached copy.
  kReplicaInvalidate,   ///< NameNode dropped a corrupt replica from the
                        ///< namespace; bytes = block size.
  // Tier hierarchy (src/storage). Emitted only when tier events are armed
  // (≥3 tiers or a non-legacy policy), so legacy two-tier trace hashes are
  // unaffected.
  kTierInit,            ///< one per tier at wiring; bytes = capacity
                        ///< (0 = unbounded home tier), detail = tier index.
  kTierPromote,         ///< copy moved to a faster tier; bytes = copy size,
                        ///< detail = (from tier << 8) | to tier.
  kTierDemote,          ///< copy moved down (or dropped when the target is
                        ///< the home tier); invalid block = byte-level
                        ///< write-buffer drain; detail as kTierPromote.
  // Partition tolerance (src/net reachability + src/fault). Emitted only
  // when partition faults are injected, so fault-free hashes are unmoved.
  kPartitionStart,      ///< node/rack cut off; detail = variant (0 symmetric
                        ///< node, 1 outbound-only, 2 inbound-only, 3 rack).
  kPartitionHeal,       ///< matching end of a partition window; detail as
                        ///< kPartitionStart.
  kNodeSuspect,         ///< detector passed liveness_timeout but is inside
                        ///< the suspicion grace window; not yet dead.
  kFalseDead,           ///< detector declared a node dead whose process was
                        ///< in fact alive (partition/heartbeat silence).
  kExcessReplicaDeleted,  ///< rejoin reconciliation dropped an
                          ///< over-replicated copy; bytes = block size.
  // Routed control plane + severed transfers (src/net/rpc, Network). Only
  // the control_plane knobs emit these, so pinned hashes are unmoved.
  kRpcTimeout,          ///< control RPC resolved without delivery; node =
                        ///< callee, detail = outcome (1 timeout,
                        ///< 2 unreachable), bytes = attempts made.
  kTransferSevered,     ///< in-flight transfer aborted at a partition cut;
                        ///< node = destination, detail = source node id
                        ///< (-1 = fan-in shuffle), bytes = unserved bytes
                        ///< refunded to the sender, value = bytes already
                        ///< on the wire when the cut landed.
  kCount              ///< Sentinel; not a real event.
};

inline constexpr std::size_t kTraceEventTypeCount =
    static_cast<std::size_t>(TraceEventType::kCount);

/// Stable lower_snake_case name, used by the JSONL sink.
const char* trace_event_name(TraceEventType type);

/// One recorded event. Fields not meaningful for a type are left at their
/// defaults (invalid ids, zero counts) and still participate in hashing, so
/// the hash covers exactly what the sinks serialize.
struct TraceEvent {
  std::uint64_t seq = 0;  ///< Emission order, assigned by the recorder.
  SimTime time;           ///< Stamped from the recorder's clock.
  TraceEventType type = TraceEventType::kCount;
  NodeId node;
  BlockId block;
  JobId job;
  Bytes bytes = 0;
  std::int64_t detail = 0;  ///< Type-specific (see enum comments).
  double value = 0.0;       ///< Type-specific rate/ratio.
};

}  // namespace ignem
