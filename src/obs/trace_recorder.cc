#include "obs/trace_recorder.h"

#include <bit>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "common/check.h"

namespace ignem {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

constexpr char kBinaryMagic[8] = {'I', 'G', 'N', 'T', 'R', 'C', '0', '1'};

void put_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (i * 8)) & 0xff);
  os.write(buf, 8);
}

std::uint64_t get_u64(std::istream& is) {
  char buf[8];
  is.read(buf, 8);
  IGNEM_CHECK_MSG(is.good(), "truncated binary trace");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (i * 8);
  }
  return v;
}

}  // namespace

const char* trace_event_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSimRunStart: return "sim_run_start";
    case TraceEventType::kSimRunEnd: return "sim_run_end";
    case TraceEventType::kDeviceReadStart: return "device_read_start";
    case TraceEventType::kDeviceReadEnd: return "device_read_end";
    case TraceEventType::kDeviceWriteStart: return "device_write_start";
    case TraceEventType::kDeviceWriteEnd: return "device_write_end";
    case TraceEventType::kBandwidthChange: return "bandwidth_change";
    case TraceEventType::kCacheInit: return "cache_init";
    case TraceEventType::kCacheLock: return "cache_lock";
    case TraceEventType::kCacheUnlock: return "cache_unlock";
    case TraceEventType::kCacheReserve: return "cache_reserve";
    case TraceEventType::kCacheCommit: return "cache_commit";
    case TraceEventType::kCacheCancel: return "cache_cancel";
    case TraceEventType::kCacheHit: return "cache_hit";
    case TraceEventType::kCacheMiss: return "cache_miss";
    case TraceEventType::kFileCreate: return "file_create";
    case TraceEventType::kReplicaAdd: return "replica_add";
    case TraceEventType::kNodeDead: return "node_dead";
    case TraceEventType::kNodeAlive: return "node_alive";
    case TraceEventType::kBlockReadStart: return "block_read_start";
    case TraceEventType::kBlockReadEnd: return "block_read_end";
    case TraceEventType::kRepairStart: return "repair_start";
    case TraceEventType::kRepairComplete: return "repair_complete";
    case TraceEventType::kJobRegister: return "job_register";
    case TraceEventType::kJobComplete: return "job_complete";
    case TraceEventType::kContainerAllocate: return "container_allocate";
    case TraceEventType::kContainerRelease: return "container_release";
    case TraceEventType::kMigrateRequest: return "migrate_request";
    case TraceEventType::kEvictRequest: return "evict_request";
    case TraceEventType::kMigrationEnqueue: return "migration_enqueue";
    case TraceEventType::kMigrationDequeue: return "migration_dequeue";
    case TraceEventType::kMigrationDrop: return "migration_drop";
    case TraceEventType::kMigrationStart: return "migration_start";
    case TraceEventType::kMigrationComplete: return "migration_complete";
    case TraceEventType::kEviction: return "eviction";
    case TraceEventType::kHotPromote: return "hot_promote";
    case TraceEventType::kFaultNodeCrash: return "fault_node_crash";
    case TraceEventType::kFaultMasterCrash: return "fault_master_crash";
    case TraceEventType::kFaultSlaveCrash: return "fault_slave_crash";
    case TraceEventType::kFaultDiskFailStop: return "fault_disk_fail_stop";
    case TraceEventType::kFaultDiskFailSlow: return "fault_disk_fail_slow";
    case TraceEventType::kFaultNetworkDegrade: return "fault_network_degrade";
    case TraceEventType::kFaultHeartbeatDelay: return "fault_heartbeat_delay";
    case TraceEventType::kFaultDetectedDead: return "fault_detected_dead";
    case TraceEventType::kRecoverNodeRestart: return "recover_node_restart";
    case TraceEventType::kRecoverNodeRejoin: return "recover_node_rejoin";
    case TraceEventType::kRecoverMasterRestart: return "recover_master_restart";
    case TraceEventType::kRecoverSlaveRestart: return "recover_slave_restart";
    case TraceEventType::kRecoverDisk: return "recover_disk";
    case TraceEventType::kRecoverNetwork: return "recover_network";
    case TraceEventType::kRecoverHeartbeat: return "recover_heartbeat";
    case TraceEventType::kMigrationRetry: return "migration_retry";
    case TraceEventType::kFaultBlockCorrupt: return "fault_block_corrupt";
    case TraceEventType::kScrub: return "scrub";
    case TraceEventType::kBlockReadCorrupt: return "block_read_corrupt";
    case TraceEventType::kCorruptionDetected: return "corruption_detected";
    case TraceEventType::kReplicaInvalidate: return "replica_invalidate";
    case TraceEventType::kTierInit: return "tier_init";
    case TraceEventType::kTierPromote: return "tier_promote";
    case TraceEventType::kTierDemote: return "tier_demote";
    case TraceEventType::kPartitionStart: return "partition_start";
    case TraceEventType::kPartitionHeal: return "partition_heal";
    case TraceEventType::kNodeSuspect: return "node_suspect";
    case TraceEventType::kFalseDead: return "false_dead";
    case TraceEventType::kExcessReplicaDeleted: return "excess_replica_deleted";
    case TraceEventType::kRpcTimeout: return "rpc_timeout";
    case TraceEventType::kTransferSevered: return "transfer_severed";
    case TraceEventType::kCount: break;
  }
  return "?";
}

TraceRecorder::TraceRecorder() : hash_(kFnvOffset) { mask_.fill(true); }

void TraceRecorder::set_enabled(TraceEventType type, bool enabled) {
  IGNEM_CHECK(type != TraceEventType::kCount);
  mask_[static_cast<std::size_t>(type)] = enabled;
}

void TraceRecorder::enable_only(std::initializer_list<TraceEventType> types) {
  mask_.fill(false);
  for (const TraceEventType type : types) set_enabled(type, true);
}

void TraceRecorder::add_observer(TraceObserver* observer) {
  IGNEM_CHECK(observer != nullptr);
  observers_.push_back(observer);
}

void TraceRecorder::emit(TraceEventType type, NodeId node, BlockId block,
                         JobId job, Bytes bytes, std::int64_t detail,
                         double value) {
  if (!mask_[static_cast<std::size_t>(type)]) return;
  TraceEvent event;
  event.seq = next_seq_++;
  event.time = clock_ ? clock_() : SimTime::zero();
  event.type = type;
  event.node = node;
  event.block = block;
  event.job = job;
  event.bytes = bytes;
  event.detail = detail;
  event.value = value;

  fnv_mix(hash_, static_cast<std::uint64_t>(event.time.count_micros()));
  fnv_mix(hash_, static_cast<std::uint64_t>(type));
  fnv_mix(hash_, static_cast<std::uint64_t>(node.value()));
  fnv_mix(hash_, static_cast<std::uint64_t>(block.value()));
  fnv_mix(hash_, static_cast<std::uint64_t>(job.value()));
  fnv_mix(hash_, static_cast<std::uint64_t>(bytes));
  fnv_mix(hash_, static_cast<std::uint64_t>(detail));
  fnv_mix(hash_, std::bit_cast<std::uint64_t>(value));

  events_.push_back(event);
  for (TraceObserver* observer : observers_) observer->on_event(event);
}

void TraceRecorder::append_jsonl(std::ostream& os, const TraceEvent& event) {
  os << "{\"seq\":" << event.seq << ",\"t\":" << event.time.count_micros()
     << ",\"type\":\"" << trace_event_name(event.type)
     << "\",\"node\":" << event.node.value()
     << ",\"block\":" << event.block.value()
     << ",\"job\":" << event.job.value() << ",\"bytes\":" << event.bytes
     << ",\"detail\":" << event.detail;
  // Rates serialize as exact bit patterns: the golden-diff contract is
  // bit-for-bit, and decimal round-trips of doubles are not.
  os << ",\"value_bits\":" << std::bit_cast<std::uint64_t>(event.value)
     << "}\n";
}

void TraceRecorder::write_jsonl(std::ostream& os) const {
  for (const TraceEvent& event : events_) append_jsonl(os, event);
}

void TraceRecorder::write_binary(std::ostream& os) const {
  os.write(kBinaryMagic, sizeof(kBinaryMagic));
  put_u64(os, events_.size());
  for (const TraceEvent& event : events_) {
    put_u64(os, event.seq);
    put_u64(os, static_cast<std::uint64_t>(event.time.count_micros()));
    put_u64(os, static_cast<std::uint64_t>(event.type));
    put_u64(os, static_cast<std::uint64_t>(event.node.value()));
    put_u64(os, static_cast<std::uint64_t>(event.block.value()));
    put_u64(os, static_cast<std::uint64_t>(event.job.value()));
    put_u64(os, static_cast<std::uint64_t>(event.bytes));
    put_u64(os, static_cast<std::uint64_t>(event.detail));
    put_u64(os, std::bit_cast<std::uint64_t>(event.value));
  }
}

std::vector<TraceEvent> TraceRecorder::read_binary(std::istream& is) {
  char magic[sizeof(kBinaryMagic)];
  is.read(magic, sizeof(magic));
  IGNEM_CHECK_MSG(is.good() && std::memcmp(magic, kBinaryMagic,
                                           sizeof(kBinaryMagic)) == 0,
                  "not an ignem binary trace");
  const std::uint64_t count = get_u64(is);
  std::vector<TraceEvent> events;
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent event;
    event.seq = get_u64(is);
    event.time = SimTime(static_cast<std::int64_t>(get_u64(is)));
    const std::uint64_t type = get_u64(is);
    IGNEM_CHECK_MSG(type < kTraceEventTypeCount, "bad event type in trace");
    event.type = static_cast<TraceEventType>(type);
    event.node = NodeId(static_cast<std::int64_t>(get_u64(is)));
    event.block = BlockId(static_cast<std::int64_t>(get_u64(is)));
    event.job = JobId(static_cast<std::int64_t>(get_u64(is)));
    event.bytes = static_cast<Bytes>(get_u64(is));
    event.detail = static_cast<std::int64_t>(get_u64(is));
    event.value = std::bit_cast<double>(get_u64(is));
    events.push_back(event);
  }
  return events;
}

void TraceRecorder::clear() {
  events_.clear();
  next_seq_ = 0;
  hash_ = kFnvOffset;
}

}  // namespace ignem
