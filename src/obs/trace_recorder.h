// Structured event-trace recorder.
//
// Components hold a `TraceRecorder*` that defaults to nullptr; emission
// sites are `if (trace_) trace_->emit(...)`, so a run without tracing pays
// one pointer compare per site and nothing else. When wired (Testbed does
// this when `enable_trace` is set), every emitted event is stamped with a
// sequence number and the simulated time, appended to the in-memory trace,
// folded into a running FNV-1a hash, and forwarded to any registered
// observers (the InvariantChecker is one). A per-type mask filters events
// before any of that happens — golden traces use a coarse mask so the
// checked-in file stays small and free of floating-point rates.
#pragma once

#include <array>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "obs/trace_event.h"

namespace ignem {

/// Receives every recorded (post-mask) event, in emission order.
class TraceObserver {
 public:
  virtual ~TraceObserver() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

class TraceRecorder {
 public:
  using Clock = std::function<SimTime()>;

  TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Source of event timestamps; Testbed binds this to Simulator::now.
  /// Unset, events are stamped SimTime::zero().
  void set_clock(Clock clock) { clock_ = std::move(clock); }

  /// Enables/disables one event type. All types start enabled.
  void set_enabled(TraceEventType type, bool enabled);

  /// Disables everything except `types` (coarse golden-trace masks).
  void enable_only(std::initializer_list<TraceEventType> types);

  bool enabled(TraceEventType type) const {
    return mask_[static_cast<std::size_t>(type)];
  }

  /// Records one event. `seq` and `time` are assigned here; callers fill
  /// the payload fields only.
  void emit(TraceEventType type, NodeId node = NodeId::invalid(),
            BlockId block = BlockId::invalid(), JobId job = JobId::invalid(),
            Bytes bytes = 0, std::int64_t detail = 0, double value = 0.0);

  /// Observers see events as they are emitted. Not owned; must outlive the
  /// recorder's emission lifetime.
  void add_observer(TraceObserver* observer);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Running FNV-1a digest over every recorded event's serialized fields.
  /// Two runs are bit-for-bit identical iff their hashes match (64-bit
  /// collision risk aside) — the determinism regression primitive.
  std::uint64_t trace_hash() const { return hash_; }

  /// One JSON object per line, stable field order; the golden-trace format.
  void write_jsonl(std::ostream& os) const;

  /// Compact little-endian binary: header + packed events.
  void write_binary(std::ostream& os) const;

  /// Parses write_binary() output (trace diffing across runs/processes).
  /// Throws CheckFailure on a malformed stream.
  static std::vector<TraceEvent> read_binary(std::istream& is);

  /// Serializes one event as a JSONL line (shared with TraceDiff output).
  static void append_jsonl(std::ostream& os, const TraceEvent& event);

  /// Drops recorded events and resets seq/hash; observers and mask stay.
  void clear();

 private:
  Clock clock_;
  std::array<bool, kTraceEventTypeCount> mask_;
  std::vector<TraceEvent> events_;
  std::vector<TraceObserver*> observers_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t hash_;
};

}  // namespace ignem
