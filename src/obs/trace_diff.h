// Trace comparison: prove two runs took the same path, or show exactly
// where they diverged.
//
// trace_hash() answers "identical or not" in O(1); TraceDiff answers "where
// and how" — the tool you reach for when a determinism regression fires.
// Event diffs compare full payloads field by field; text diffs compare
// JSONL lines, so golden files can be checked without reconstructing
// events.
#pragma once

#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace ignem {

struct TraceDiffResult {
  bool identical = true;
  /// Index (event or line) of the first divergence; only valid when
  /// !identical.
  std::size_t first_divergence = 0;
  /// Human-readable description of the first divergence.
  std::string description;
};

/// Compares two event sequences field by field.
TraceDiffResult diff_traces(const std::vector<TraceEvent>& a,
                            const std::vector<TraceEvent>& b);

/// Compares two JSONL texts line by line (golden-trace checking).
TraceDiffResult diff_jsonl(const std::string& a, const std::string& b);

}  // namespace ignem
