// Live invariant checking over the event-trace stream.
//
// The InvariantChecker subscribes to a TraceRecorder and replays every
// event through a set of pluggable rules, each asserting one of the
// paper-level conservation laws the simulator must uphold:
//
//   MonotoneTimeRule          simulated time never runs backwards
//   ReplicaAccountingRule     a node never gains a replica it already holds;
//                             the event-derived replica map stays exact
//   ReadProvenanceRule        a block is never read on a node it was never
//                             written to, nor on a namespace-dead node
//   BandwidthConservationRule per-stream shares never sum past a channel's
//                             sequential capacity
//   CacheCapacityRule         a locked-page pool never exceeds its capacity
//                             nor goes negative
//   SingleMigrationRule       a slave pages in at most one block at a time
//                             (the paper's anti-contention rule, §III-A1)
//   QueueIntegrityRule        every migration dequeue/drop matches a prior
//                             enqueue of the same (node, block, job)
//   HotPromotionRule          the hot-data baseline only promotes blocks
//                             whose observed read count reached its threshold
//   NodeDownRule              no locked bytes, containers, migrations, or
//                             reads on a node between its kFaultNodeCrash
//                             and kRecoverNodeRestart events
//   CorruptReadRule           once a copy is silently corrupted, no read
//                             completes cleanly from it, no migration
//                             commits it to memory, and no repair sources
//                             from a NameNode-marked replica
//   TierResidencyRule         a block holds at most one pool-tier copy per
//                             node, tier moves come from the tier the copy
//                             is resident in, and per-tier occupancy never
//                             exceeds the kTierInit capacity
//
// Violations are collected, not thrown: a run can finish and report every
// breach, and tests can assert that crafted violating streams fire the
// right rule. The event-derived replica model is exposed so callers (e.g.
// Testbed) can cross-check it against live NameNode metadata.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/trace_recorder.h"

namespace ignem {

struct InvariantViolation {
  std::string rule;
  std::uint64_t seq = 0;  ///< Of the offending event.
  SimTime time;
  TraceEventType type = TraceEventType::kCount;
  std::string message;
};

/// One conservation law, fed the stream event by event.
class InvariantRule {
 public:
  virtual ~InvariantRule() = default;
  virtual const char* name() const = 0;
  virtual void check(const TraceEvent& event,
                     std::vector<InvariantViolation>& out) = 0;

 protected:
  /// Appends a violation for `event` under this rule's name.
  void violate(const TraceEvent& event, std::string message,
               std::vector<InvariantViolation>& out);
};

class MonotoneTimeRule : public InvariantRule {
 public:
  const char* name() const override { return "monotone_time"; }
  void check(const TraceEvent& event,
             std::vector<InvariantViolation>& out) override;

 private:
  SimTime last_;
  bool seen_ = false;
  std::uint64_t last_seq_ = 0;
};

class ReplicaAccountingRule : public InvariantRule {
 public:
  const char* name() const override { return "replica_accounting"; }
  void check(const TraceEvent& event,
             std::vector<InvariantViolation>& out) override;

  std::size_t replica_count(BlockId block) const;
  bool has_replica(BlockId block, NodeId node) const;
  const std::map<BlockId, std::set<NodeId>>& blocks() const { return blocks_; }

 private:
  std::map<BlockId, std::set<NodeId>> blocks_;
};

class ReadProvenanceRule : public InvariantRule {
 public:
  const char* name() const override { return "read_provenance"; }
  void check(const TraceEvent& event,
             std::vector<InvariantViolation>& out) override;

 private:
  std::map<BlockId, std::set<NodeId>> replicas_;
  std::unordered_set<NodeId> dead_nodes_;
};

class BandwidthConservationRule : public InvariantRule {
 public:
  const char* name() const override { return "bandwidth_conservation"; }
  void check(const TraceEvent& event,
             std::vector<InvariantViolation>& out) override;
};

class CacheCapacityRule : public InvariantRule {
 public:
  const char* name() const override { return "cache_capacity"; }
  void check(const TraceEvent& event,
             std::vector<InvariantViolation>& out) override;

 private:
  std::unordered_map<NodeId, Bytes> capacity_;
};

class SingleMigrationRule : public InvariantRule {
 public:
  const char* name() const override { return "single_migration"; }
  void check(const TraceEvent& event,
             std::vector<InvariantViolation>& out) override;

 private:
  std::unordered_set<NodeId> in_flight_;
};

class QueueIntegrityRule : public InvariantRule {
 public:
  const char* name() const override { return "queue_integrity"; }
  void check(const TraceEvent& event,
             std::vector<InvariantViolation>& out) override;

 private:
  std::map<std::tuple<NodeId, BlockId, JobId>, std::int64_t> queued_;
};

/// Fault lifecycle: between a node's kFaultNodeCrash and its
/// kRecoverNodeRestart the node's processes do not exist, so nothing may
/// lock memory, accept a container, start a migration, or serve a read
/// there. (Unlocks ARE allowed: the OS reclaims the dead process's locked
/// pool at crash time.)
class NodeDownRule : public InvariantRule {
 public:
  const char* name() const override { return "node_down"; }
  void check(const TraceEvent& event,
             std::vector<InvariantViolation>& out) override;

 private:
  std::unordered_set<NodeId> down_;
};

/// Data-integrity plane: a kFaultBlockCorrupt event poisons one copy (disk
/// replica when detail=0, cached copy when detail=1). From then on a clean
/// kBlockReadEnd from that copy's medium, a committed migration
/// (kMigrationComplete detail=0) fed by the poisoned disk replica, or a
/// kRepairStart sourced from a replica the NameNode has already marked
/// corrupt (kCorruptionDetected value=0) is a violation. The poison clears
/// only when the copy itself goes away: kReplicaInvalidate for the disk
/// replica; unlock/overwrite/node-crash for the cached copy.
class CorruptReadRule : public InvariantRule {
 public:
  const char* name() const override { return "corrupt_read"; }
  void check(const TraceEvent& event,
             std::vector<InvariantViolation>& out) override;

 private:
  std::set<std::pair<NodeId, BlockId>> disk_corrupt_;
  std::set<std::pair<NodeId, BlockId>> cache_corrupt_;
  std::set<std::pair<NodeId, BlockId>> marked_;  ///< NameNode knows.
};

class HotPromotionRule : public InvariantRule {
 public:
  const char* name() const override { return "hot_promotion"; }
  void check(const TraceEvent& event,
             std::vector<InvariantViolation>& out) override;

 private:
  std::map<std::pair<NodeId, BlockId>, std::int64_t> reads_;
};

/// Tier hierarchy (armed runs only — the legacy two-tier configuration
/// emits no kTier* events): a block holds at most one pool-tier copy per
/// node, every kTierPromote/kTierDemote moves the copy from the tier it is
/// actually resident in, and per-tier occupancy derived from those moves
/// never exceeds the capacity announced by kTierInit. Byte-level
/// write-buffer drains (invalid block id) and node crashes (the OS
/// reclaims every pool) clear state rather than count against it.
class TierResidencyRule : public InvariantRule {
 public:
  const char* name() const override { return "tier_residency"; }
  void check(const TraceEvent& event,
             std::vector<InvariantViolation>& out) override;

 private:
  /// Pool tier currently holding each (node, block) copy, with its size.
  std::map<std::pair<NodeId, BlockId>, std::pair<std::size_t, Bytes>>
      residency_;
  std::map<std::pair<NodeId, std::size_t>, Bytes> capacity_;
  std::map<std::pair<NodeId, std::size_t>, Bytes> occupancy_;
  std::map<NodeId, std::size_t> home_;  ///< Highest tier index announced.
};

class InvariantChecker : public TraceObserver {
 public:
  /// Installs the default rule set above. Pass false for an empty checker
  /// that tests populate rule by rule.
  explicit InvariantChecker(bool install_default_rules = true);

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  void add_rule(std::unique_ptr<InvariantRule> rule);

  void on_event(const TraceEvent& event) override;

  bool ok() const { return violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }

  /// The event-derived replica model (null without the default rules).
  const ReplicaAccountingRule* replica_model() const { return replica_rule_; }

  /// Human-readable one-per-line violation report (test diagnostics).
  std::string report() const;

 private:
  std::vector<std::unique_ptr<InvariantRule>> rules_;
  std::vector<InvariantViolation> violations_;
  const ReplicaAccountingRule* replica_rule_ = nullptr;
};

}  // namespace ignem
