#include "obs/invariant_checker.h"

#include <sstream>
#include <utility>

#include "common/check.h"

namespace ignem {

void InvariantRule::violate(const TraceEvent& event, std::string message,
                            std::vector<InvariantViolation>& out) {
  InvariantViolation v;
  v.rule = name();
  v.seq = event.seq;
  v.time = event.time;
  v.type = event.type;
  v.message = std::move(message);
  out.push_back(std::move(v));
}

// ---------------------------------------------------------------------------

void MonotoneTimeRule::check(const TraceEvent& event,
                             std::vector<InvariantViolation>& out) {
  if (seen_) {
    if (event.time < last_) {
      std::ostringstream os;
      os << "time ran backwards: " << event.time.count_micros() << "us after "
         << last_.count_micros() << "us";
      violate(event, os.str(), out);
    }
    if (event.seq <= last_seq_) {
      violate(event, "sequence numbers are not strictly increasing", out);
    }
  }
  seen_ = true;
  last_ = event.time;
  last_seq_ = event.seq;
}

// ---------------------------------------------------------------------------

void ReplicaAccountingRule::check(const TraceEvent& event,
                                  std::vector<InvariantViolation>& out) {
  switch (event.type) {
    case TraceEventType::kReplicaAdd: {
      const auto [it, inserted] = blocks_[event.block].insert(event.node);
      (void)it;
      if (!inserted) {
        std::ostringstream os;
        os << "node " << event.node << " already holds a replica of block "
           << event.block;
        violate(event, os.str(), out);
      }
      break;
    }
    case TraceEventType::kReplicaInvalidate: {
      const auto it = blocks_.find(event.block);
      if (it == blocks_.end() || it->second.erase(event.node) == 0) {
        std::ostringstream os;
        os << "node " << event.node
           << " invalidated a replica it never held of block " << event.block;
        violate(event, os.str(), out);
      }
      break;
    }
    default:
      break;
  }
}

std::size_t ReplicaAccountingRule::replica_count(BlockId block) const {
  const auto it = blocks_.find(block);
  return it == blocks_.end() ? 0 : it->second.size();
}

bool ReplicaAccountingRule::has_replica(BlockId block, NodeId node) const {
  const auto it = blocks_.find(block);
  return it != blocks_.end() && it->second.contains(node);
}

// ---------------------------------------------------------------------------

void ReadProvenanceRule::check(const TraceEvent& event,
                               std::vector<InvariantViolation>& out) {
  switch (event.type) {
    case TraceEventType::kReplicaAdd:
      replicas_[event.block].insert(event.node);
      break;
    case TraceEventType::kReplicaInvalidate:
      // The on-disk copy is gone; any later read there is a provenance bug.
      replicas_[event.block].erase(event.node);
      break;
    case TraceEventType::kNodeDead:
      dead_nodes_.insert(event.node);
      break;
    case TraceEventType::kNodeAlive:
      dead_nodes_.erase(event.node);
      break;
    case TraceEventType::kBlockReadStart: {
      const auto it = replicas_.find(event.block);
      if (it == replicas_.end() || !it->second.contains(event.node)) {
        std::ostringstream os;
        os << "block " << event.block << " read on node " << event.node
           << " which never received a replica of it";
        violate(event, os.str(), out);
      }
      if (dead_nodes_.contains(event.node)) {
        std::ostringstream os;
        os << "block " << event.block << " read on dead node " << event.node;
        violate(event, os.str(), out);
      }
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------

void BandwidthConservationRule::check(const TraceEvent& event,
                                      std::vector<InvariantViolation>& out) {
  if (event.type != TraceEventType::kBandwidthChange) return;
  const double streams = static_cast<double>(event.detail);
  const double per_stream = event.value;
  const double capacity = static_cast<double>(event.bytes);
  if (per_stream < 0) {
    violate(event, "negative per-stream rate", out);
    return;
  }
  // Aggregate in use must fit under the channel's sequential capacity (the
  // degradation model only ever shrinks the aggregate). Tolerate fp residue.
  if (streams * per_stream > capacity * (1.0 + 1e-9)) {
    std::ostringstream os;
    os << streams << " streams at " << per_stream
       << " B/s oversubscribe a channel of " << capacity << " B/s";
    violate(event, os.str(), out);
  }
}

// ---------------------------------------------------------------------------

void CacheCapacityRule::check(const TraceEvent& event,
                              std::vector<InvariantViolation>& out) {
  switch (event.type) {
    case TraceEventType::kCacheInit:
      capacity_[event.node] = event.bytes;
      return;
    case TraceEventType::kCacheLock:
    case TraceEventType::kCacheUnlock:
    case TraceEventType::kCacheReserve:
    case TraceEventType::kCacheCommit:
    case TraceEventType::kCacheCancel:
      break;
    default:
      return;
  }
  const Bytes used = event.detail;
  if (used < 0) {
    violate(event, "locked-pool usage went negative", out);
    return;
  }
  const auto it = capacity_.find(event.node);
  if (it != capacity_.end() && used > it->second) {
    std::ostringstream os;
    os << "locked pool on node " << event.node << " holds " << used
       << " bytes, over its capacity of " << it->second;
    violate(event, os.str(), out);
  }
}

// ---------------------------------------------------------------------------

void SingleMigrationRule::check(const TraceEvent& event,
                                std::vector<InvariantViolation>& out) {
  switch (event.type) {
    case TraceEventType::kMigrationStart:
      if (!in_flight_.insert(event.node).second) {
        std::ostringstream os;
        os << "node " << event.node
           << " started a second concurrent migration (block " << event.block
           << ")";
        violate(event, os.str(), out);
      }
      break;
    case TraceEventType::kMigrationComplete:
      if (in_flight_.erase(event.node) == 0) {
        std::ostringstream os;
        os << "node " << event.node << " completed a migration of block "
           << event.block << " it never started";
        violate(event, os.str(), out);
      }
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------

void QueueIntegrityRule::check(const TraceEvent& event,
                               std::vector<InvariantViolation>& out) {
  const auto key = std::make_tuple(event.node, event.block, event.job);
  switch (event.type) {
    case TraceEventType::kMigrationEnqueue:
      ++queued_[key];
      break;
    case TraceEventType::kMigrationDequeue:
    case TraceEventType::kMigrationDrop: {
      auto it = queued_.find(key);
      if (it == queued_.end() || it->second <= 0) {
        std::ostringstream os;
        os << "migration of block " << event.block << " for job " << event.job
           << " left node " << event.node << "'s queue without entering it";
        violate(event, os.str(), out);
        break;
      }
      if (--it->second == 0) queued_.erase(it);
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------

void NodeDownRule::check(const TraceEvent& event,
                         std::vector<InvariantViolation>& out) {
  switch (event.type) {
    case TraceEventType::kFaultNodeCrash:
      down_.insert(event.node);
      return;
    case TraceEventType::kRecoverNodeRestart:
      down_.erase(event.node);
      return;
    // Activity that requires a live process on the node.
    case TraceEventType::kCacheLock:
    case TraceEventType::kCacheReserve:
    case TraceEventType::kCacheCommit:
    case TraceEventType::kContainerAllocate:
    case TraceEventType::kMigrationStart:
    case TraceEventType::kBlockReadStart:
      break;
    default:
      return;
  }
  if (down_.contains(event.node)) {
    std::ostringstream os;
    os << trace_event_name(event.type) << " on node " << event.node
       << " while it is crashed";
    violate(event, os.str(), out);
  }
}

// ---------------------------------------------------------------------------

void CorruptReadRule::check(const TraceEvent& event,
                            std::vector<InvariantViolation>& out) {
  const auto key = std::make_pair(event.node, event.block);
  switch (event.type) {
    case TraceEventType::kFaultBlockCorrupt:
      (event.detail == 1 ? cache_corrupt_ : disk_corrupt_).insert(key);
      return;
    case TraceEventType::kCorruptionDetected:
      // value=0 marks the disk replica in the NameNode; cached-copy
      // detections (value=1) are handled locally and never reach it.
      if (event.value == 0.0) marked_.insert(key);
      return;
    case TraceEventType::kReplicaInvalidate:
      disk_corrupt_.erase(key);
      marked_.erase(key);
      return;
    case TraceEventType::kCacheLock:
    case TraceEventType::kCacheCommit:
      // A freshly written copy starts clean.
      cache_corrupt_.erase(key);
      return;
    case TraceEventType::kCacheUnlock:
      if (event.block.valid()) {
        cache_corrupt_.erase(key);
      } else {
        // Aggregate pool clear (crash/eviction sweep) drops every copy.
        std::erase_if(cache_corrupt_,
                      [&](const auto& e) { return e.first == event.node; });
      }
      return;
    case TraceEventType::kFaultNodeCrash:
      // The OS reclaims the locked pool; disk rot survives the crash.
      std::erase_if(cache_corrupt_,
                    [&](const auto& e) { return e.first == event.node; });
      return;
    case TraceEventType::kBlockReadEnd: {
      const bool from_memory = event.detail == 1;
      if (from_memory ? cache_corrupt_.contains(key)
                      : disk_corrupt_.contains(key)) {
        std::ostringstream os;
        os << "clean read of block " << event.block << " served from node "
           << event.node << "'s corrupt "
           << (from_memory ? "cached copy" : "disk replica");
        violate(event, os.str(), out);
      }
      return;
    }
    case TraceEventType::kMigrationComplete:
      if (event.detail == 0 && disk_corrupt_.contains(key)) {
        std::ostringstream os;
        os << "node " << event.node
           << " committed a migration of block " << event.block
           << " fed by its corrupt disk replica";
        violate(event, os.str(), out);
      }
      return;
    case TraceEventType::kRepairStart:
      // node = repair source here.
      if (marked_.contains(key)) {
        std::ostringstream os;
        os << "repair of block " << event.block
           << " sourced from node " << event.node
           << " whose replica is marked corrupt";
        violate(event, os.str(), out);
      }
      return;
    default:
      return;
  }
}

// ---------------------------------------------------------------------------

void HotPromotionRule::check(const TraceEvent& event,
                             std::vector<InvariantViolation>& out) {
  switch (event.type) {
    case TraceEventType::kBlockReadEnd:
      ++reads_[{event.node, event.block}];
      break;
    case TraceEventType::kHotPromote: {
      const std::int64_t threshold = static_cast<std::int64_t>(event.value);
      const auto it = reads_.find({event.node, event.block});
      const std::int64_t observed = it == reads_.end() ? 0 : it->second;
      if (observed < threshold) {
        std::ostringstream os;
        os << "block " << event.block << " promoted on node " << event.node
           << " after " << observed << " observed reads (threshold "
           << threshold << ")";
        violate(event, os.str(), out);
      }
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------

void TierResidencyRule::check(const TraceEvent& event,
                              std::vector<InvariantViolation>& out) {
  switch (event.type) {
    case TraceEventType::kTierInit: {
      const std::size_t tier = static_cast<std::size_t>(event.detail);
      capacity_[{event.node, tier}] = event.bytes;
      auto [it, inserted] = home_.try_emplace(event.node, tier);
      if (!inserted && tier > it->second) it->second = tier;
      return;
    }
    case TraceEventType::kFaultNodeCrash:
      // The OS reclaims every pool on the node.
      std::erase_if(residency_,
                    [&](const auto& e) { return e.first.first == event.node; });
      for (auto& [key, used] : occupancy_) {
        if (key.first == event.node) used = 0;
      }
      return;
    case TraceEventType::kTierPromote:
    case TraceEventType::kTierDemote:
      break;
    default:
      return;
  }
  if (!event.block.valid()) return;  // byte-level write-buffer drain
  const std::size_t from = static_cast<std::size_t>(event.detail >> 8);
  const std::size_t to = static_cast<std::size_t>(event.detail & 0xff);
  const auto home_it = home_.find(event.node);
  const std::size_t home =
      home_it == home_.end() ? std::size_t{0} : home_it->second;
  const auto key = std::make_pair(event.node, event.block);
  const auto res = residency_.find(key);

  const auto leave = [&](std::size_t tier, Bytes bytes) {
    auto& used = occupancy_[{event.node, tier}];
    used = used >= bytes ? used - bytes : 0;
  };
  const auto arrive = [&](std::size_t tier) {
    const Bytes used = occupancy_[{event.node, tier}] += event.bytes;
    const auto cap = capacity_.find({event.node, tier});
    if (cap != capacity_.end() && cap->second > 0 && used > cap->second) {
      std::ostringstream os;
      os << "tier " << tier << " on node " << event.node << " holds " << used
         << " bytes, over its capacity of " << cap->second;
      violate(event, os.str(), out);
    }
  };

  if (event.type == TraceEventType::kTierPromote) {
    if (to >= from) {
      violate(event, "promote does not move the copy to a faster tier", out);
      return;
    }
    if (res != residency_.end() && res->second.first != from) {
      std::ostringstream os;
      os << "block " << event.block << " promoted from tier " << from
         << " but its copy on node " << event.node << " lives in tier "
         << res->second.first;
      violate(event, os.str(), out);
    } else if (res == residency_.end() && from != home) {
      std::ostringstream os;
      os << "block " << event.block << " promoted from pool tier " << from
         << " on node " << event.node << " where it holds no copy";
      violate(event, os.str(), out);
    }
    if (res != residency_.end()) leave(res->second.first, res->second.second);
    residency_[key] = {to, event.bytes};
    arrive(to);
    return;
  }

  // kTierDemote.
  if (to <= from) {
    violate(event, "demote does not move the copy to a slower tier", out);
    return;
  }
  if (res == residency_.end() || res->second.first != from) {
    std::ostringstream os;
    os << "block " << event.block << " demoted from tier " << from
       << " on node " << event.node << " but its copy lives in "
       << (res == residency_.end() ? std::string("no pool tier")
                                   : "tier " + std::to_string(
                                                   res->second.first));
    violate(event, os.str(), out);
  }
  if (res != residency_.end()) {
    leave(res->second.first, res->second.second);
    residency_.erase(res);
  }
  if (to < home) {
    residency_[key] = {to, event.bytes};
    arrive(to);
  }
}

// ---------------------------------------------------------------------------

InvariantChecker::InvariantChecker(bool install_default_rules) {
  if (!install_default_rules) return;
  add_rule(std::make_unique<MonotoneTimeRule>());
  auto replica_rule = std::make_unique<ReplicaAccountingRule>();
  replica_rule_ = replica_rule.get();
  add_rule(std::move(replica_rule));
  add_rule(std::make_unique<ReadProvenanceRule>());
  add_rule(std::make_unique<BandwidthConservationRule>());
  add_rule(std::make_unique<CacheCapacityRule>());
  add_rule(std::make_unique<SingleMigrationRule>());
  add_rule(std::make_unique<QueueIntegrityRule>());
  add_rule(std::make_unique<HotPromotionRule>());
  add_rule(std::make_unique<NodeDownRule>());
  add_rule(std::make_unique<CorruptReadRule>());
  add_rule(std::make_unique<TierResidencyRule>());
}

void InvariantChecker::add_rule(std::unique_ptr<InvariantRule> rule) {
  IGNEM_CHECK(rule != nullptr);
  rules_.push_back(std::move(rule));
}

void InvariantChecker::on_event(const TraceEvent& event) {
  for (const auto& rule : rules_) rule->check(event, violations_);
}

std::string InvariantChecker::report() const {
  std::ostringstream os;
  for (const InvariantViolation& v : violations_) {
    os << "[" << v.rule << "] seq=" << v.seq << " t=" << v.time.count_micros()
       << "us " << trace_event_name(v.type) << ": " << v.message << "\n";
  }
  return os.str();
}

}  // namespace ignem
