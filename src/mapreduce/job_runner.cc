#include "mapreduce/job_runner.h"

#include <algorithm>
#include <memory>

#include "common/check.h"

namespace ignem {
namespace {
// A shuffle whose senders are cut off retries the missing shares at this
// cadence until the partition heals...
constexpr Duration kShuffleRetryDelay = Duration::seconds(1.0);
// ...and gives up — failing the job like a terminal read — once a cut
// outlives this window, so no reduce task hangs forever.
constexpr Duration kShuffleDeadline = Duration::seconds(600.0);
}  // namespace

JobRunner::JobRunner(Simulator& sim, ResourceManager& rm, DfsClient& dfs,
                     Network& network, RunMetrics* metrics, JobId id,
                     JobSpec spec)
    : sim_(sim),
      rm_(rm),
      dfs_(dfs),
      network_(network),
      metrics_(metrics),
      id_(id),
      spec_(std::move(spec)) {
  IGNEM_CHECK(id_.valid());
  IGNEM_CHECK_MSG(!spec_.inputs.empty(), "job needs at least one input file");
  for (const FileId file : spec_.inputs) {
    for (const BlockId block : dfs_.namenode().file(file).blocks) {
      const Bytes bytes = dfs_.namenode().block(block).size;
      maps_.push_back(MapTask{TaskId(next_task_++), block, bytes});
      input_bytes_ += bytes;
    }
  }
  shuffle_bytes_ = static_cast<Bytes>(static_cast<double>(input_bytes_) *
                                      spec_.compute.map_output_ratio);
  output_bytes_ = static_cast<Bytes>(static_cast<double>(input_bytes_) *
                                     spec_.compute.output_ratio);
  reduce_count_ = spec_.compute.reduce_tasks;
}

void JobRunner::submit(CompletionCallback on_complete) {
  IGNEM_CHECK(on_complete != nullptr);
  on_complete_ = std::move(on_complete);
  submit_time_ = sim_.now();

  // The job submitter runs first (§III-B3): issue the migrate call before
  // anything else so the slaves get the maximum lead-time.
  if (spec_.use_ignem) {
    MigrationRequest request;
    request.op = MigrationOp::kMigrate;
    request.eviction = spec_.eviction;
    request.job = id_;
    request.job_input_bytes = input_bytes_;
    request.files = spec_.inputs;
    dfs_.migrate(request);
  }
  // Injected lead-time (Fig. 8 "Ignem+10s") sleeps *after* the migrate call
  // but before submission, and is counted in the job's duration.
  sim_.schedule(spec_.extra_lead_time + spec_.submit_overhead,
                [this] { enter_scheduler(); });
}

void JobRunner::enter_scheduler() {
  rm_.register_job(id_);
  map_epoch_.assign(maps_.size(), 0);
  for (std::size_t i = 0; i < maps_.size(); ++i) request_map(i);
}

void JobRunner::request_map(std::size_t index) {
  ContainerRequest request;
  request.job = id_;
  // Recompute preferences fresh: after a failure the replica set (and which
  // copies sit in memory) may have changed since the original attempt.
  request.preferred = dfs_.preferred_locations(maps_[index].block);
  request.on_allocated = [this, index](const ContainerGrant& grant) {
    launch_map(index, grant);
  };
  request.on_lost = [this, index] {
    ++map_epoch_[index];
    request_map(index);
  };
  rm_.request_container(std::move(request));
}

void JobRunner::launch_map(std::size_t index, const ContainerGrant& grant) {
  const SimTime start = sim_.now();
  const NodeId node = grant.node;
  const int epoch = map_epoch_[index];
  first_task_start_ = std::min(first_task_start_, start);

  sim_.schedule(spec_.compute.task_overhead, [this, index, grant, node, start,
                                              epoch] {
    if (epoch != map_epoch_[index]) return;
    const MapTask& task = maps_[index];
    dfs_.read_block(
        node, task.block, id_,
        [this, index, grant, node, start, epoch](const BlockReadRecord& read) {
          if (epoch != map_epoch_[index]) return;
          if (read.failed) {
            // Terminal read error: the input is unreadable everywhere (all
            // replicas lost or corrupt) and the deadline ran out. Fail the
            // job but keep its lifecycle moving — the container goes back,
            // the barrier advances, and complete() still runs so the sim
            // never hangs on lost data.
            failed_ = true;
            rm_.release_container(grant);
            on_map_done();
            return;
          }
          const MapTask& task = maps_[index];
          const double mib_in =
              static_cast<double>(task.bytes) / static_cast<double>(kMiB);
          const Duration compute =
              Duration::seconds(spec_.compute.map_cpu_secs_per_mib * mib_in);
          sim_.schedule(compute, [this, index, grant, node, start, epoch,
                                  read] {
            if (epoch != map_epoch_[index]) return;
            const MapTask& task = maps_[index];
            map_output_nodes_[node] += task.bytes;
            if (metrics_ != nullptr) {
              TaskRecord record;
              record.task = task.id;
              record.job = id_;
              record.node = node;
              record.kind = TaskKind::kMap;
              record.input_bytes = task.bytes;
              record.launch = start;
              record.duration = sim_.now() - start;
              record.read_time = read.duration;
              metrics_->add_task(record);
            }
            rm_.release_container(grant);
            on_map_done();
          });
        });
  });
}

void JobRunner::on_map_done() {
  ++maps_done_;
  if (maps_done_ == maps_.size()) start_reduce_stage();
}

void JobRunner::start_reduce_stage() {
  if (failed_) {
    // Map input was lost; the map outputs never materialized, so there is
    // nothing to shuffle. Tear the job down as failed.
    finish_job();
    return;
  }
  if (reduce_count_ <= 0 || shuffle_bytes_ <= 0) {
    finish_job();
    return;
  }
  reduce_epoch_.assign(static_cast<std::size_t>(reduce_count_), 0);
  for (int i = 0; i < reduce_count_; ++i) {
    request_reduce(static_cast<std::size_t>(i));
  }
}

void JobRunner::request_reduce(std::size_t index) {
  ContainerRequest request;
  request.job = id_;
  request.on_allocated = [this, index](const ContainerGrant& grant) {
    launch_reduce(index, grant);
  };
  request.on_lost = [this, index] {
    ++reduce_epoch_[index];
    request_reduce(index);
  };
  rm_.request_container(std::move(request));
}

void JobRunner::launch_reduce(std::size_t index, const ContainerGrant& grant) {
  const SimTime start = sim_.now();
  const NodeId node = grant.node;
  const int epoch = reduce_epoch_[index];
  const Bytes shuffle_share = shuffle_bytes_ / reduce_count_;
  const Bytes output_share = output_bytes_ / reduce_count_;
  const TaskId task_id(next_task_++);

  sim_.schedule(spec_.compute.task_overhead, [this, index, grant, node, start,
                                              epoch, shuffle_share,
                                              output_share, task_id] {
    if (epoch != reduce_epoch_[index]) return;
    // Shuffle: fan-in through the reducer's NIC. Map outputs sit in the
    // senders' page caches, so the network is the chokepoint. Each sender's
    // share is gated on reachability; blocked shares retry until the
    // partition heals.
    run_shuffle(index, grant, node, start, epoch,
                shuffle_shares(shuffle_share), shuffle_share, output_share,
                task_id, sim_.now());
  });
}

std::vector<Network::IngressShare> JobRunner::shuffle_shares(
    Bytes total) const {
  std::vector<Network::IngressShare> shares;
  if (total <= 0 || map_output_nodes_.empty()) return shares;
  Bytes map_total = 0;
  for (const auto& [node, bytes] : map_output_nodes_) map_total += bytes;
  shares.reserve(map_output_nodes_.size());
  Bytes assigned = 0;
  std::size_t i = 0;
  for (const auto& [node, bytes] : map_output_nodes_) {
    ++i;
    Bytes share;
    if (i == map_output_nodes_.size()) {
      share = total - assigned;  // Remainder keeps the sum exact.
    } else {
      share = std::min(total - assigned,
                       static_cast<Bytes>(static_cast<double>(total) *
                                          (static_cast<double>(bytes) /
                                           static_cast<double>(map_total))));
    }
    assigned += share;
    if (share > 0) shares.push_back({node, share});
  }
  return shares;
}

void JobRunner::run_shuffle(std::size_t index, const ContainerGrant& grant,
                            NodeId node, SimTime start, int epoch,
                            std::vector<Network::IngressShare> shares,
                            Bytes shuffle_share, Bytes output_share,
                            TaskId task_id, SimTime shuffle_start) {
  network_.ingress_transfer(
      node, std::move(shares),
      [this, index, grant, node, start, epoch, shuffle_share, output_share,
       task_id, shuffle_start](Bytes arrived,
                               std::vector<Network::IngressShare> unserved) {
        (void)arrived;
        if (epoch != reduce_epoch_[index]) return;
        if (unserved.empty()) {
          finish_reduce(index, grant, node, start, epoch, shuffle_share,
                        output_share, task_id);
          return;
        }
        if (sim_.now() - shuffle_start > kShuffleDeadline) {
          // Senders stayed unreachable past the deadline: fail the job but
          // keep its lifecycle moving, as the map-side terminal read does.
          failed_ = true;
          rm_.release_container(grant);
          on_reduce_done();
          return;
        }
        sim_.schedule(
            kShuffleRetryDelay,
            [this, index, grant, node, start, epoch, shuffle_share,
             output_share, task_id, shuffle_start,
             unserved = std::move(unserved)]() mutable {
              if (epoch != reduce_epoch_[index]) return;
              run_shuffle(index, grant, node, start, epoch,
                          std::move(unserved), shuffle_share, output_share,
                          task_id, shuffle_start);
            },
            EventClass::kRetry);
      });
}

void JobRunner::finish_reduce(std::size_t index, const ContainerGrant& grant,
                              NodeId node, SimTime start, int epoch,
                              Bytes shuffle_share, Bytes output_share,
                              TaskId task_id) {
  const double mib =
      static_cast<double>(shuffle_share) / static_cast<double>(kMiB);
  const Duration compute =
      Duration::seconds(spec_.compute.reduce_cpu_secs_per_mib * mib);
  // Merge compute and the output write overlap: reducers stream merged
  // output to the DFS as they go. The write still rides the local
  // device channel, so write-heavy jobs (sort) contend with reads.
  auto barrier = std::make_shared<int>(2);
  auto arm = [this, index, grant, node, start, epoch, shuffle_share, task_id,
              barrier] {
    if (--*barrier > 0) return;
    if (epoch != reduce_epoch_[index]) return;
    if (metrics_ != nullptr) {
      TaskRecord record;
      record.task = task_id;
      record.job = id_;
      record.node = node;
      record.kind = TaskKind::kReduce;
      record.input_bytes = shuffle_share;
      record.launch = start;
      record.duration = sim_.now() - start;
      record.read_time = Duration::zero();
      metrics_->add_task(record);
    }
    rm_.release_container(grant);
    on_reduce_done();
  };
  sim_.schedule(compute, arm);
  if (output_share > 0) {
    dfs_.namenode().datanode(node)->write(output_share, arm);
  } else {
    arm();
  }
}

void JobRunner::on_reduce_done() {
  ++reduces_done_;
  if (reduces_done_ == static_cast<std::size_t>(reduce_count_)) finish_job();
}

void JobRunner::finish_job() {
  // Output commit + teardown before the job is reported complete.
  sim_.schedule(spec_.commit_overhead, [this] { complete(); });
}

void JobRunner::complete() {
  IGNEM_CHECK(!finished_);
  finished_ = true;
  rm_.complete_job(id_);

  // The job submitter's completion hook: drop this job's references so the
  // slaves can release migration memory (§III-A4).
  if (spec_.use_ignem) {
    MigrationRequest request;
    request.op = MigrationOp::kEvict;
    request.eviction = spec_.eviction;
    request.job = id_;
    request.job_input_bytes = input_bytes_;
    request.files = spec_.inputs;
    dfs_.migrate(request);
  }

  JobRecord record;
  record.job = id_;
  record.name = spec_.name;
  record.input_bytes = input_bytes_;
  record.submit = submit_time_;
  record.first_task_start =
      first_task_start_ == SimTime::max() ? submit_time_ : first_task_start_;
  record.end = sim_.now();
  record.duration = record.end - record.submit;
  record.failed = failed_;
  if (metrics_ != nullptr) metrics_->add_job(record);
  on_complete_(record);
}

}  // namespace ignem
