// Job descriptions for the MapReduce/Tez-like execution engine.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "dfs/migration_service.h"

namespace ignem {

/// How a job converts bytes into time. Per-stage knobs let workload models
/// express sort (heavy shuffle + output), wordcount (CPU-bound maps, tiny
/// output), and selective scans (Hive: large input, small map output).
struct ComputeModel {
  /// Fixed per-task setup after the container is up (task JVM init etc.).
  Duration task_overhead = Duration::millis(200);
  /// Map compute per input MiB.
  double map_cpu_secs_per_mib = 0.002;
  /// Map output bytes per input byte (shuffle volume). §II-A: typically <1.
  double map_output_ratio = 0.1;
  /// Reduce compute per shuffled MiB.
  double reduce_cpu_secs_per_mib = 0.004;
  /// Job output bytes per input byte (written to the DFS by reduces).
  double output_ratio = 0.1;
  /// Number of reduce tasks; 0 makes the job map-only.
  int reduce_tasks = 1;
};

struct JobSpec {
  std::string name;
  std::vector<FileId> inputs;
  ComputeModel compute;

  /// Whether the job submitter issues the one-line Ignem migrate call.
  bool use_ignem = false;
  EvictionMode eviction = EvictionMode::kImplicit;

  /// Sleep inserted between the migrate call and job submission — the
  /// Fig. 8 "Ignem+10s" lead-time injection. Counted in job duration.
  Duration extra_lead_time = Duration::zero();

  /// Client-side submission overhead before the job reaches the scheduler
  /// (DAG compilation, Tez session setup, RPC). A platform source of
  /// lead-time (§II-C1) — Ignem migrates during it.
  Duration submit_overhead = Duration::seconds(2.0);

  /// Fixed wrap-up after the last task (output commit, teardown). Counted
  /// in job duration; identical across modes, so it dilutes read speedups
  /// at the job level exactly as the paper's fixed overheads do (§IV-C1).
  Duration commit_overhead = Duration::seconds(2.0);
};

}  // namespace ignem
