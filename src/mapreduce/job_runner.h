// JobRunner: the per-job application master.
//
// Drives one MapReduce job end-to-end: the job-submitter step (where the
// one-line Ignem migrate call lives, §III-B3), container acquisition via the
// ResourceManager, map tasks that read input blocks through the DfsClient,
// the shuffle, reduce tasks that write job output, and the final evict call.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "cluster/resource_manager.h"
#include "common/ids.h"
#include "dfs/dfs_client.h"
#include "mapreduce/job_spec.h"
#include "metrics/run_metrics.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ignem {

class JobRunner {
 public:
  using CompletionCallback = std::function<void(const JobRecord&)>;

  JobRunner(Simulator& sim, ResourceManager& rm, DfsClient& dfs,
            Network& network, RunMetrics* metrics, JobId id, JobSpec spec);

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  /// Starts the job-submitter: migrate call (if enabled), optional injected
  /// lead-time, submission overhead, then scheduling. `on_complete` fires
  /// once with the job's record. The runner must outlive the job.
  void submit(CompletionCallback on_complete);

  JobId id() const { return id_; }
  const JobSpec& spec() const { return spec_; }
  bool finished() const { return finished_; }
  bool failed() const { return failed_; }
  Bytes input_bytes() const { return input_bytes_; }

 private:
  struct MapTask {
    TaskId id;
    BlockId block;
    Bytes bytes = 0;
  };

  void enter_scheduler();
  void request_map(std::size_t index);
  void launch_map(std::size_t index, const ContainerGrant& grant);
  void on_map_done();
  void start_reduce_stage();
  void request_reduce(std::size_t index);
  void launch_reduce(std::size_t index, const ContainerGrant& grant);
  /// Splits `total` shuffle bytes across the nodes that produced map
  /// output, proportional to their share of it (remainder to the last
  /// node), so the fan-in can be partition-gated per sender.
  std::vector<Network::IngressShare> shuffle_shares(Bytes total) const;
  /// One fan-in round of a reduce task's shuffle. Shares blocked by a
  /// partition (or refunded when the stream was severed) retry after a
  /// delay until they drain or the shuffle deadline fails the job.
  void run_shuffle(std::size_t index, const ContainerGrant& grant,
                   NodeId node, SimTime start, int epoch,
                   std::vector<Network::IngressShare> shares,
                   Bytes shuffle_share, Bytes output_share, TaskId task_id,
                   SimTime shuffle_start);
  void finish_reduce(std::size_t index, const ContainerGrant& grant,
                     NodeId node, SimTime start, int epoch,
                     Bytes shuffle_share, Bytes output_share, TaskId task_id);
  void on_reduce_done();
  void finish_job();
  void complete();

  Simulator& sim_;
  ResourceManager& rm_;
  DfsClient& dfs_;
  Network& network_;
  RunMetrics* metrics_;
  JobId id_;
  JobSpec spec_;
  CompletionCallback on_complete_;

  std::vector<MapTask> maps_;
  /// Where map output materialized (node -> bytes of map input processed
  /// there): the shuffle's sender set.
  std::map<NodeId, Bytes> map_output_nodes_;
  // Attempt epochs: bumped when a task's container is lost to a node
  // failure. In-flight continuations of the old attempt compare their
  // captured epoch and drop out, so a task never completes twice.
  std::vector<int> map_epoch_;
  std::vector<int> reduce_epoch_;
  Bytes input_bytes_ = 0;
  Bytes shuffle_bytes_ = 0;
  Bytes output_bytes_ = 0;

  SimTime submit_time_;
  SimTime first_task_start_ = SimTime::max();
  std::size_t maps_done_ = 0;
  std::size_t reduces_done_ = 0;
  int reduce_count_ = 0;
  bool finished_ = false;
  bool failed_ = false;  ///< A map task's input became permanently unreadable.
  std::int64_t next_task_ = 0;
};

}  // namespace ignem
