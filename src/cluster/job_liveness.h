// Job-liveness oracle (paper §III-A4).
//
// When an Ignem slave hits its memory threshold it asks the cluster
// scheduler whether the jobs holding reference-list entries are still
// running; entries of dead jobs are reaped. The interface lives here so the
// Ignem core depends only on this contract, not on the scheduler internals.
#pragma once

#include "common/ids.h"

namespace ignem {

class JobLivenessOracle {
 public:
  virtual ~JobLivenessOracle() = default;

  /// True if the job has been submitted and has not completed/failed.
  virtual bool is_job_running(JobId job) const = 0;
};

}  // namespace ignem
