// ResourceManager: centralized, heartbeat-driven container scheduling.
//
// Models the YARN pattern the paper leans on for lead-time (§II-C1): tasks
// queue at the scheduler and are only placed when a node's periodic
// heartbeat arrives (Hadoop default: 3 s), so every task sees queueing
// delay + up to one heartbeat of scheduling latency. Locality is handled
// with delay scheduling: a request holds out for a preferred node until it
// has waited `locality_delay`, then accepts any node.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "cluster/job_liveness.h"
#include "cluster/node_manager.h"
#include "common/ids.h"
#include "common/units.h"
#include "net/rpc.h"
#include "sim/periodic.h"
#include "sim/simulator.h"

namespace ignem {

struct ClusterConfig {
  std::size_t node_count = 8;   ///< The paper's testbed size (§IV-A).
  int slots_per_node = 10;      ///< ~2 waves of tasks per 6-core/12-thread box.
  Duration heartbeat_interval = Duration::seconds(3.0);  ///< Hadoop default.
  Duration locality_delay = Duration::seconds(3.0);
  /// Container launch overhead: binary shipping + JVM warm-up (§II-C1).
  Duration container_launch = Duration::seconds(1.0);
  /// Missed-heartbeat failure detection (off by default so fault-free runs
  /// schedule no extra events and stay bit-identical). When on, a liveness
  /// monitor declares a node dead after `liveness_timeout` without a beat,
  /// frees its slots, and fires `on_lost` for every container it ran.
  bool enable_failure_detection = false;
  Duration liveness_timeout = Duration::seconds(12.0);  ///< ~4 missed beats.
  Duration liveness_check_interval = Duration::seconds(1.0);
  /// Drive all NodeManager heartbeats through one PeriodicCohort event
  /// instead of one PeriodicTask each. Tick times are identical; only
  /// same-microsecond event interleaving can differ, so this is opt-in
  /// under pinned traces (see PeriodicCohort).
  bool batch_heartbeats = false;
};

/// A granted container: the slot's node plus a unique id so a release after
/// the node was declared dead (and its slots purged) is a safe no-op.
struct ContainerGrant {
  std::uint64_t id = 0;
  NodeId node;
};

/// A request for one container, with locality preferences.
struct ContainerRequest {
  JobId job;
  std::vector<NodeId> preferred;  ///< Empty means "anywhere".
  std::function<void(const ContainerGrant&)> on_allocated;
  /// Optional: fired when the container's node is declared dead before the
  /// container was released — the owner should re-request elsewhere.
  std::function<void()> on_lost;
};

class ResourceManager : public JobLivenessOracle {
 public:
  ResourceManager(Simulator& sim, ClusterConfig config);

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  /// Tracks a job for liveness queries. Must precede its container requests.
  void register_job(JobId job);
  void complete_job(JobId job);

  bool is_job_running(JobId job) const override;

  /// Queues a container request; `on_allocated` fires (with the chosen node)
  /// from a future heartbeat once a slot is found.
  void request_container(ContainerRequest request);

  /// Returns a container's slot. Visible to the scheduler at the node's next
  /// heartbeat, as in Hadoop. A grant already purged by failure detection
  /// (node declared dead) is a no-op.
  void release_container(const ContainerGrant& grant);

  /// Node failure support: a dead node stops heartbeating and loses slots.
  void set_node_alive(NodeId node, bool alive);

  /// Crash support: stops / restarts the modeled NodeManager heartbeat so
  /// the liveness monitor sees the silence (and the rejoin).
  void halt_heartbeat(NodeId node);
  void resume_heartbeat(NodeId node);

  /// Whether failure detection currently considers `node` dead.
  bool is_node_marked_dead(NodeId node) const {
    return dead_marked_.contains(node);
  }
  std::size_t active_containers() const { return active_.size(); }

  const ClusterConfig& config() const { return config_; }
  NodeManager& node_manager(NodeId node);
  std::size_t pending_requests() const { return queue_.size(); }

  /// Mean number of requests waiting, sampled at heartbeats (diagnostics).
  double mean_queue_length() const;

  /// Emits kJobRegister/kJobComplete and kContainerAllocate/Release.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Routes NodeManager heartbeats (oneway: dropped across a cut, so the
  /// liveness monitor sees real silence) and container-grant deliveries
  /// (reliable call: an undeliverable grant reclaims its slot and fires
  /// on_lost) through the control node. Null — the default — keeps the
  /// historical direct paths, event-for-event.
  void set_rpc_router(RpcRouter* router) { router_ = router; }

 private:
  void send_heartbeat(NodeId node);
  void on_heartbeat(NodeId node);
  /// A granted container whose launch RPC never reached the node: return
  /// the slot and let the owner re-request via on_lost.
  void reclaim_grant(const ContainerGrant& grant);
  void check_liveness();
  void declare_node_dead(NodeId node);
  bool prefers(const ContainerRequest& request, NodeId node) const;

  Simulator& sim_;
  ClusterConfig config_;
  TraceRecorder* trace_ = nullptr;
  RpcRouter* router_ = nullptr;
  std::vector<std::unique_ptr<NodeManager>> nodes_;
  // Unbatched: one PeriodicTask per node. Batched: one cohort, one member
  // id per node (0 while the node's heartbeat is halted).
  std::vector<std::unique_ptr<PeriodicTask>> heartbeats_;
  std::unique_ptr<PeriodicCohort> heartbeat_cohort_;
  std::vector<PeriodicCohort::MemberId> heartbeat_members_;
  std::unique_ptr<PeriodicTask> liveness_monitor_;  // only when detection on

  struct QueuedRequest {
    ContainerRequest request;
    SimTime enqueued;
  };
  std::deque<QueuedRequest> queue_;
  std::unordered_set<JobId> running_jobs_;

  struct ActiveContainer {
    NodeId node;
    JobId job;
    std::function<void()> on_lost;
  };
  std::map<std::uint64_t, ActiveContainer> active_;  // ordered: determinism
  std::uint64_t next_container_ = 1;
  std::vector<SimTime> last_beat_;            // index == NodeId value
  std::unordered_set<NodeId> dead_marked_;    // declared dead, not rejoined

  std::uint64_t heartbeat_count_ = 0;
  std::uint64_t queue_length_accum_ = 0;
};

}  // namespace ignem
