#include "cluster/resource_manager.h"

#include <algorithm>

#include "common/check.h"

namespace ignem {

ResourceManager::ResourceManager(Simulator& sim, ClusterConfig config)
    : sim_(sim), config_(config) {
  IGNEM_CHECK(config_.node_count > 0);
  nodes_.reserve(config_.node_count);
  heartbeats_.reserve(config_.node_count);
  last_beat_.resize(config_.node_count, SimTime::zero());
  if (config_.batch_heartbeats) {
    heartbeat_cohort_ = std::make_unique<PeriodicCohort>(sim_);
    heartbeat_members_.resize(config_.node_count, 0);
  }
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    const NodeId id(static_cast<std::int64_t>(i));
    nodes_.push_back(std::make_unique<NodeManager>(id, config_.slots_per_node));
    // Stagger heartbeats uniformly across the interval, as real clusters
    // naturally do: node i's first beat lands at (i+1)/n of one interval.
    const Duration offset =
        config_.heartbeat_interval *
        (static_cast<double>(i + 1) / static_cast<double>(config_.node_count));
    if (config_.batch_heartbeats) {
      heartbeat_members_[i] = heartbeat_cohort_->add(
          offset, config_.heartbeat_interval,
          [this, id] { send_heartbeat(id); });
    } else {
      heartbeats_.push_back(std::make_unique<PeriodicTask>(
          sim_, offset, config_.heartbeat_interval,
          [this, id] { send_heartbeat(id); }));
    }
  }
  if (config_.enable_failure_detection) {
    liveness_monitor_ = std::make_unique<PeriodicTask>(
        sim_, config_.liveness_check_interval, config_.liveness_check_interval,
        [this] { check_liveness(); });
  }
}

void ResourceManager::register_job(JobId job) {
  IGNEM_CHECK(job.valid());
  running_jobs_.insert(job);
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kJobRegister, NodeId::invalid(),
                 BlockId::invalid(), job);
  }
}

void ResourceManager::complete_job(JobId job) {
  running_jobs_.erase(job);
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kJobComplete, NodeId::invalid(),
                 BlockId::invalid(), job);
  }
}

bool ResourceManager::is_job_running(JobId job) const {
  return running_jobs_.contains(job);
}

void ResourceManager::request_container(ContainerRequest request) {
  IGNEM_CHECK(request.on_allocated != nullptr);
  queue_.push_back(QueuedRequest{std::move(request), sim_.now()});
}

void ResourceManager::release_container(const ContainerGrant& grant) {
  if (active_.erase(grant.id) == 0) return;  // purged when node declared dead
  node_manager(grant.node).release();
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kContainerRelease, grant.node);
  }
}

void ResourceManager::set_node_alive(NodeId node, bool alive) {
  node_manager(node).set_alive(alive);
}

void ResourceManager::halt_heartbeat(NodeId node) {
  IGNEM_CHECK(node.valid() &&
              static_cast<std::size_t>(node.value()) < config_.node_count);
  const auto i = static_cast<std::size_t>(node.value());
  if (config_.batch_heartbeats) {
    heartbeat_cohort_->remove(heartbeat_members_[i]);
    heartbeat_members_[i] = 0;
  } else {
    heartbeats_[i].reset();
  }
}

void ResourceManager::resume_heartbeat(NodeId node) {
  IGNEM_CHECK(node.valid() &&
              static_cast<std::size_t>(node.value()) < config_.node_count);
  const auto i = static_cast<std::size_t>(node.value());
  if (config_.batch_heartbeats) {
    heartbeat_members_[i] =
        heartbeat_cohort_->add(config_.heartbeat_interval,
                               config_.heartbeat_interval,
                               [this, node] { send_heartbeat(node); });
  } else {
    heartbeats_[i] = std::make_unique<PeriodicTask>(
        sim_, config_.heartbeat_interval, config_.heartbeat_interval,
        [this, node] { send_heartbeat(node); });
  }
}

void ResourceManager::send_heartbeat(NodeId node) {
  if (router_ == nullptr) {
    on_heartbeat(node);
    return;
  }
  // Routed: the beat is a datagram from the NodeManager to the control
  // node. A partition drops it on the floor, so the liveness monitor sees
  // genuine silence instead of the Testbed having to suppress the task.
  router_->oneway(node, router_->control_node(),
                  [this, node] { on_heartbeat(node); });
}

void ResourceManager::reclaim_grant(const ContainerGrant& grant) {
  const auto it = active_.find(grant.id);
  if (it == active_.end()) return;  // node declared dead meanwhile: purged
  auto on_lost = std::move(it->second.on_lost);
  active_.erase(it);
  node_manager(grant.node).release();
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kContainerRelease, grant.node);
  }
  if (on_lost != nullptr) on_lost();
}

void ResourceManager::check_liveness() {
  const SimTime now = sim_.now();
  for (std::size_t i = 0; i < last_beat_.size(); ++i) {
    const NodeId node(static_cast<std::int64_t>(i));
    if (dead_marked_.contains(node)) continue;
    if (now - last_beat_[i] > config_.liveness_timeout) {
      declare_node_dead(node);
    }
  }
}

void ResourceManager::declare_node_dead(NodeId node) {
  dead_marked_.insert(node);
  NodeManager& manager = node_manager(node);
  manager.set_alive(false);
  manager.reset_slots();
  if (trace_ != nullptr) {
    trace_->emit(TraceEventType::kFaultDetectedDead, node, BlockId::invalid(),
                 JobId::invalid(), 0, /*detail=*/1);  // 1 = ResourceManager
  }
  // Purge the node's containers and let their owners re-request elsewhere.
  std::vector<std::function<void()>> lost;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.node == node) {
      if (it->second.on_lost != nullptr) {
        lost.push_back(std::move(it->second.on_lost));
      }
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& cb : lost) cb();
}

NodeManager& ResourceManager::node_manager(NodeId node) {
  IGNEM_CHECK(node.valid() &&
              static_cast<std::size_t>(node.value()) < nodes_.size());
  return *nodes_[static_cast<std::size_t>(node.value())];
}

bool ResourceManager::prefers(const ContainerRequest& request,
                              NodeId node) const {
  if (request.preferred.empty()) return true;
  return std::find(request.preferred.begin(), request.preferred.end(), node) !=
         request.preferred.end();
}

void ResourceManager::on_heartbeat(NodeId node) {
  ++heartbeat_count_;
  queue_length_accum_ += queue_.size();
  last_beat_[static_cast<std::size_t>(node.value())] = sim_.now();
  NodeManager& manager = node_manager(node);
  if (dead_marked_.contains(node)) {
    // A beat from a declared-dead node: it restarted (or was only silenced
    // by a heartbeat delay). Readmit it with a clean slate of slots.
    dead_marked_.erase(node);
    manager.set_alive(true);
    manager.reset_slots();
    if (trace_ != nullptr) {
      trace_->emit(TraceEventType::kRecoverNodeRejoin, node,
                   BlockId::invalid(), JobId::invalid(), 0, /*detail=*/1);
    }
  }
  if (!manager.alive()) return;

  // A node only takes its fair share of location-free requests per
  // heartbeat, so e.g. a reduce wave spreads across the cluster instead of
  // piling onto whichever node beats first (YARN's round-robin offers).
  std::size_t unpreferred_budget = std::max<std::size_t>(
      1, (queue_.size() + config_.node_count - 1) / config_.node_count);

  // Two passes over the FIFO: first requests that prefer this node, then —
  // delay scheduling — requests that have outwaited the locality delay.
  for (const bool locality_pass : {true, false}) {
    auto it = queue_.begin();
    while (it != queue_.end() && manager.free_slots() > 0) {
      const bool unpreferred = it->request.preferred.empty();
      // The fair-share budget binds location-free requests in both passes;
      // the delay-scheduling relaxation only waives *locality*, it is not a
      // license for one node to drain the whole queue.
      const bool budget_ok = !unpreferred || unpreferred_budget > 0;
      const bool eligible =
          locality_pass
              ? prefers(it->request, node) && budget_ok
              : sim_.now() - it->enqueued >= config_.locality_delay &&
                    budget_ok;
      if (!eligible) {
        ++it;
        continue;
      }
      if (unpreferred) --unpreferred_budget;
      manager.allocate();
      if (trace_ != nullptr) {
        trace_->emit(TraceEventType::kContainerAllocate, node,
                     BlockId::invalid(), it->request.job);
      }
      const ContainerGrant grant{next_container_++, node};
      active_.emplace(grant.id, ActiveContainer{node, it->request.job,
                                                std::move(it->request.on_lost)});
      auto on_allocated = std::move(it->request.on_allocated);
      it = queue_.erase(it);
      // Container launch overhead (binary shipping + JVM warm-up) before the
      // task code runs. If the node is declared dead before launch finishes
      // the grant is purged and the callback never fires (on_lost already
      // re-requested).
      auto launch = [this, cb = std::move(on_allocated), grant]() {
        sim_.schedule(config_.container_launch, [this, cb, grant] {
          if (!active_.contains(grant.id)) return;
          cb(grant);
        });
      };
      if (router_ == nullptr) {
        launch();
      } else {
        // Routed: the grant travels control node -> slave. When the RPC
        // cannot land before the deadline (the slave's rack is cut off),
        // the slot is reclaimed so the owner re-requests elsewhere instead
        // of waiting on a container that will never start.
        router_->call(router_->control_node(), grant.node, std::move(launch),
                      [this, grant](RpcOutcome) { reclaim_grant(grant); });
      }
    }
    if (manager.free_slots() == 0) break;
  }
}

double ResourceManager::mean_queue_length() const {
  if (heartbeat_count_ == 0) return 0.0;
  return static_cast<double>(queue_length_accum_) /
         static_cast<double>(heartbeat_count_);
}

}  // namespace ignem
