// NodeManager: per-node task slots.
#pragma once

#include "common/check.h"
#include "common/ids.h"

namespace ignem {

/// Tracks container slots on one worker. The ResourceManager allocates and
/// releases slots; actual task execution is driven by the MapReduce engine.
class NodeManager {
 public:
  NodeManager(NodeId id, int slots) : id_(id), total_slots_(slots) {
    IGNEM_CHECK(slots > 0);
  }

  NodeId id() const { return id_; }
  int total_slots() const { return total_slots_; }
  int used_slots() const { return used_slots_; }
  int free_slots() const { return alive_ ? total_slots_ - used_slots_ : 0; }

  void allocate() {
    IGNEM_CHECK(free_slots() > 0);
    ++used_slots_;
  }

  void release() {
    IGNEM_CHECK(used_slots_ > 0);
    --used_slots_;
  }

  bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  /// Crash bookkeeping: a declared-dead (or freshly restarted) node runs no
  /// containers, so all slots come back free.
  void reset_slots() { used_slots_ = 0; }

 private:
  NodeId id_;
  int total_slots_;
  int used_slots_ = 0;
  bool alive_ = true;
};

}  // namespace ignem
