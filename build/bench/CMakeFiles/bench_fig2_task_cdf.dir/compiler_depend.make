# Empty compiler generated dependencies file for bench_fig2_task_cdf.
# This may be replaced when dependencies are built.
