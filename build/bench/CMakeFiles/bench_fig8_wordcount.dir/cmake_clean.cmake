file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_wordcount.dir/bench_fig8_wordcount.cc.o"
  "CMakeFiles/bench_fig8_wordcount.dir/bench_fig8_wordcount.cc.o.d"
  "bench_fig8_wordcount"
  "bench_fig8_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
