# Empty dependencies file for bench_ablation_replicas.
# This may be replaced when dependencies are built.
