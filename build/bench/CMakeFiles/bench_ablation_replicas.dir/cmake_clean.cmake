file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_replicas.dir/bench_ablation_replicas.cc.o"
  "CMakeFiles/bench_ablation_replicas.dir/bench_ablation_replicas.cc.o.d"
  "bench_ablation_replicas"
  "bench_ablation_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
