file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_leadtime.dir/bench_fig3_leadtime.cc.o"
  "CMakeFiles/bench_fig3_leadtime.dir/bench_fig3_leadtime.cc.o.d"
  "bench_fig3_leadtime"
  "bench_fig3_leadtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_leadtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
