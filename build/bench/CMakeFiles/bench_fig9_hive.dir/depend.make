# Empty dependencies file for bench_fig9_hive.
# This may be replaced when dependencies are built.
