file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_hive.dir/bench_fig9_hive.cc.o"
  "CMakeFiles/bench_fig9_hive.dir/bench_fig9_hive.cc.o.d"
  "bench_fig9_hive"
  "bench_fig9_hive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_hive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
