# Empty compiler generated dependencies file for bench_fig4_disk_util.
# This may be replaced when dependencies are built.
