file(REMOVE_RECURSE
  "CMakeFiles/bench_related_hotdata.dir/bench_related_hotdata.cc.o"
  "CMakeFiles/bench_related_hotdata.dir/bench_related_hotdata.cc.o.d"
  "bench_related_hotdata"
  "bench_related_hotdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_hotdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
