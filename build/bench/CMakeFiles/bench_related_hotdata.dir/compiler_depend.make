# Empty compiler generated dependencies file for bench_related_hotdata.
# This may be replaced when dependencies are built.
