# Empty compiler generated dependencies file for bench_fig5_swim_bins.
# This may be replaced when dependencies are built.
