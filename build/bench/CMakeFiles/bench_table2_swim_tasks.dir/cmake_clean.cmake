file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_swim_tasks.dir/bench_table2_swim_tasks.cc.o"
  "CMakeFiles/bench_table2_swim_tasks.dir/bench_table2_swim_tasks.cc.o.d"
  "bench_table2_swim_tasks"
  "bench_table2_swim_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_swim_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
