# Empty compiler generated dependencies file for bench_table2_swim_tasks.
# This may be replaced when dependencies are built.
