file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_stages.dir/bench_motivation_stages.cc.o"
  "CMakeFiles/bench_motivation_stages.dir/bench_motivation_stages.cc.o.d"
  "bench_motivation_stages"
  "bench_motivation_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
