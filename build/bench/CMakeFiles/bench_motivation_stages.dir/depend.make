# Empty dependencies file for bench_motivation_stages.
# This may be replaced when dependencies are built.
