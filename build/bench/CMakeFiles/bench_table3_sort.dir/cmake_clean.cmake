file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sort.dir/bench_table3_sort.cc.o"
  "CMakeFiles/bench_table3_sort.dir/bench_table3_sort.cc.o.d"
  "bench_table3_sort"
  "bench_table3_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
