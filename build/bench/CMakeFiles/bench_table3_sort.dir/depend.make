# Empty dependencies file for bench_table3_sort.
# This may be replaced when dependencies are built.
