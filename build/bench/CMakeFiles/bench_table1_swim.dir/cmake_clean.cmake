file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_swim.dir/bench_table1_swim.cc.o"
  "CMakeFiles/bench_table1_swim.dir/bench_table1_swim.cc.o.d"
  "bench_table1_swim"
  "bench_table1_swim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_swim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
