# Empty dependencies file for bench_table1_swim.
# This may be replaced when dependencies are built.
