# Empty dependencies file for bench_fig1_block_reads.
# This may be replaced when dependencies are built.
