file(REMOVE_RECURSE
  "CMakeFiles/bench_microkernel.dir/bench_microkernel.cc.o"
  "CMakeFiles/bench_microkernel.dir/bench_microkernel.cc.o.d"
  "bench_microkernel"
  "bench_microkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
