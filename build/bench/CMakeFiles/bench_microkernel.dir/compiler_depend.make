# Empty compiler generated dependencies file for bench_microkernel.
# This may be replaced when dependencies are built.
