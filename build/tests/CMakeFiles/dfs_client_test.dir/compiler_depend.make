# Empty compiler generated dependencies file for dfs_client_test.
# This may be replaced when dependencies are built.
