file(REMOVE_RECURSE
  "CMakeFiles/dfs_client_test.dir/dfs_client_test.cc.o"
  "CMakeFiles/dfs_client_test.dir/dfs_client_test.cc.o.d"
  "dfs_client_test"
  "dfs_client_test.pdb"
  "dfs_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
