# Empty dependencies file for testbed_integration_test.
# This may be replaced when dependencies are built.
