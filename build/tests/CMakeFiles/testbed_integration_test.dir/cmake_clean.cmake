file(REMOVE_RECURSE
  "CMakeFiles/testbed_integration_test.dir/testbed_integration_test.cc.o"
  "CMakeFiles/testbed_integration_test.dir/testbed_integration_test.cc.o.d"
  "testbed_integration_test"
  "testbed_integration_test.pdb"
  "testbed_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
