file(REMOVE_RECURSE
  "CMakeFiles/migration_queue_test.dir/migration_queue_test.cc.o"
  "CMakeFiles/migration_queue_test.dir/migration_queue_test.cc.o.d"
  "migration_queue_test"
  "migration_queue_test.pdb"
  "migration_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
