# Empty compiler generated dependencies file for google_trace_test.
# This may be replaced when dependencies are built.
