file(REMOVE_RECURSE
  "CMakeFiles/google_trace_test.dir/google_trace_test.cc.o"
  "CMakeFiles/google_trace_test.dir/google_trace_test.cc.o.d"
  "google_trace_test"
  "google_trace_test.pdb"
  "google_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/google_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
