file(REMOVE_RECURSE
  "CMakeFiles/ignem_master_test.dir/ignem_master_test.cc.o"
  "CMakeFiles/ignem_master_test.dir/ignem_master_test.cc.o.d"
  "ignem_master_test"
  "ignem_master_test.pdb"
  "ignem_master_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_master_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
