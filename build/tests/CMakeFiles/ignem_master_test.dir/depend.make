# Empty dependencies file for ignem_master_test.
# This may be replaced when dependencies are built.
