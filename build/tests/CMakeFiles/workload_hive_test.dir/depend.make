# Empty dependencies file for workload_hive_test.
# This may be replaced when dependencies are built.
