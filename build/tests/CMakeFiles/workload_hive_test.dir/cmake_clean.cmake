file(REMOVE_RECURSE
  "CMakeFiles/workload_hive_test.dir/workload_hive_test.cc.o"
  "CMakeFiles/workload_hive_test.dir/workload_hive_test.cc.o.d"
  "workload_hive_test"
  "workload_hive_test.pdb"
  "workload_hive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_hive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
