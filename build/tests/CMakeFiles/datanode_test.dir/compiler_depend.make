# Empty compiler generated dependencies file for datanode_test.
# This may be replaced when dependencies are built.
