file(REMOVE_RECURSE
  "CMakeFiles/datanode_test.dir/datanode_test.cc.o"
  "CMakeFiles/datanode_test.dir/datanode_test.cc.o.d"
  "datanode_test"
  "datanode_test.pdb"
  "datanode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
