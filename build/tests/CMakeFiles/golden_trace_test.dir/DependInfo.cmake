
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/golden_trace_test.cc" "tests/CMakeFiles/golden_trace_test.dir/golden_trace_test.cc.o" "gcc" "tests/CMakeFiles/golden_trace_test.dir/golden_trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/ignem_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ignem_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ignem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/ignem_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ignem_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/ignem_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ignem_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ignem_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ignem_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ignem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ignem_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ignem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
