# Empty compiler generated dependencies file for namenode_test.
# This may be replaced when dependencies are built.
