file(REMOVE_RECURSE
  "CMakeFiles/namenode_test.dir/namenode_test.cc.o"
  "CMakeFiles/namenode_test.dir/namenode_test.cc.o.d"
  "namenode_test"
  "namenode_test.pdb"
  "namenode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namenode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
