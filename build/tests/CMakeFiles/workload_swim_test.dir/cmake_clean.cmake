file(REMOVE_RECURSE
  "CMakeFiles/workload_swim_test.dir/workload_swim_test.cc.o"
  "CMakeFiles/workload_swim_test.dir/workload_swim_test.cc.o.d"
  "workload_swim_test"
  "workload_swim_test.pdb"
  "workload_swim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_swim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
