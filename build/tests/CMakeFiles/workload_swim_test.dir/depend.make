# Empty dependencies file for workload_swim_test.
# This may be replaced when dependencies are built.
