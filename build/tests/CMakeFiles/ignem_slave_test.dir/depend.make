# Empty dependencies file for ignem_slave_test.
# This may be replaced when dependencies are built.
