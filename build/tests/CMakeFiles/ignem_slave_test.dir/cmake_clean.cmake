file(REMOVE_RECURSE
  "CMakeFiles/ignem_slave_test.dir/ignem_slave_test.cc.o"
  "CMakeFiles/ignem_slave_test.dir/ignem_slave_test.cc.o.d"
  "ignem_slave_test"
  "ignem_slave_test.pdb"
  "ignem_slave_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_slave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
