# Empty compiler generated dependencies file for replication_manager_test.
# This may be replaced when dependencies are built.
