file(REMOVE_RECURSE
  "CMakeFiles/replication_manager_test.dir/replication_manager_test.cc.o"
  "CMakeFiles/replication_manager_test.dir/replication_manager_test.cc.o.d"
  "replication_manager_test"
  "replication_manager_test.pdb"
  "replication_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
