# Empty dependencies file for hot_data_test.
# This may be replaced when dependencies are built.
