# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_units_test[1]_include.cmake")
include("/root/repo/build/tests/common_rng_test[1]_include.cmake")
include("/root/repo/build/tests/common_stats_test[1]_include.cmake")
include("/root/repo/build/tests/common_histogram_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/bandwidth_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_cache_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/namenode_test[1]_include.cmake")
include("/root/repo/build/tests/datanode_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_client_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/migration_queue_test[1]_include.cmake")
include("/root/repo/build/tests/ignem_slave_test[1]_include.cmake")
include("/root/repo/build/tests/ignem_master_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_integration_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/workload_swim_test[1]_include.cmake")
include("/root/repo/build/tests/workload_hive_test[1]_include.cmake")
include("/root/repo/build/tests/google_trace_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/replication_manager_test[1]_include.cmake")
include("/root/repo/build/tests/csv_export_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/hot_data_test[1]_include.cmake")
