file(REMOVE_RECURSE
  "CMakeFiles/ignem_trace.dir/disk_util.cc.o"
  "CMakeFiles/ignem_trace.dir/disk_util.cc.o.d"
  "CMakeFiles/ignem_trace.dir/leadtime.cc.o"
  "CMakeFiles/ignem_trace.dir/leadtime.cc.o.d"
  "libignem_trace.a"
  "libignem_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
