# Empty dependencies file for ignem_trace.
# This may be replaced when dependencies are built.
