file(REMOVE_RECURSE
  "libignem_trace.a"
)
