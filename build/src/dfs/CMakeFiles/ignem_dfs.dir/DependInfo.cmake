
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/datanode.cc" "src/dfs/CMakeFiles/ignem_dfs.dir/datanode.cc.o" "gcc" "src/dfs/CMakeFiles/ignem_dfs.dir/datanode.cc.o.d"
  "/root/repo/src/dfs/dfs_client.cc" "src/dfs/CMakeFiles/ignem_dfs.dir/dfs_client.cc.o" "gcc" "src/dfs/CMakeFiles/ignem_dfs.dir/dfs_client.cc.o.d"
  "/root/repo/src/dfs/namenode.cc" "src/dfs/CMakeFiles/ignem_dfs.dir/namenode.cc.o" "gcc" "src/dfs/CMakeFiles/ignem_dfs.dir/namenode.cc.o.d"
  "/root/repo/src/dfs/replication_manager.cc" "src/dfs/CMakeFiles/ignem_dfs.dir/replication_manager.cc.o" "gcc" "src/dfs/CMakeFiles/ignem_dfs.dir/replication_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ignem_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ignem_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ignem_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ignem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ignem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ignem_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
