# Empty dependencies file for ignem_dfs.
# This may be replaced when dependencies are built.
