file(REMOVE_RECURSE
  "libignem_dfs.a"
)
