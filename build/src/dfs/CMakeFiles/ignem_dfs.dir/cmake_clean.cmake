file(REMOVE_RECURSE
  "CMakeFiles/ignem_dfs.dir/datanode.cc.o"
  "CMakeFiles/ignem_dfs.dir/datanode.cc.o.d"
  "CMakeFiles/ignem_dfs.dir/dfs_client.cc.o"
  "CMakeFiles/ignem_dfs.dir/dfs_client.cc.o.d"
  "CMakeFiles/ignem_dfs.dir/namenode.cc.o"
  "CMakeFiles/ignem_dfs.dir/namenode.cc.o.d"
  "CMakeFiles/ignem_dfs.dir/replication_manager.cc.o"
  "CMakeFiles/ignem_dfs.dir/replication_manager.cc.o.d"
  "libignem_dfs.a"
  "libignem_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
