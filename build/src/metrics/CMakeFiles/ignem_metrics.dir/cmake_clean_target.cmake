file(REMOVE_RECURSE
  "libignem_metrics.a"
)
