# Empty compiler generated dependencies file for ignem_metrics.
# This may be replaced when dependencies are built.
