file(REMOVE_RECURSE
  "CMakeFiles/ignem_metrics.dir/csv_export.cc.o"
  "CMakeFiles/ignem_metrics.dir/csv_export.cc.o.d"
  "CMakeFiles/ignem_metrics.dir/run_metrics.cc.o"
  "CMakeFiles/ignem_metrics.dir/run_metrics.cc.o.d"
  "CMakeFiles/ignem_metrics.dir/table.cc.o"
  "CMakeFiles/ignem_metrics.dir/table.cc.o.d"
  "libignem_metrics.a"
  "libignem_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
