file(REMOVE_RECURSE
  "libignem_cluster.a"
)
