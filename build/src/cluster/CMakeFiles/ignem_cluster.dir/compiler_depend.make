# Empty compiler generated dependencies file for ignem_cluster.
# This may be replaced when dependencies are built.
