file(REMOVE_RECURSE
  "CMakeFiles/ignem_cluster.dir/resource_manager.cc.o"
  "CMakeFiles/ignem_cluster.dir/resource_manager.cc.o.d"
  "libignem_cluster.a"
  "libignem_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
