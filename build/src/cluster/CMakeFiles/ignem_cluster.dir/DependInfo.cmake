
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/resource_manager.cc" "src/cluster/CMakeFiles/ignem_cluster.dir/resource_manager.cc.o" "gcc" "src/cluster/CMakeFiles/ignem_cluster.dir/resource_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ignem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ignem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ignem_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
