file(REMOVE_RECURSE
  "libignem_common.a"
)
