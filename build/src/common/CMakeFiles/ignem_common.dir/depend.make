# Empty dependencies file for ignem_common.
# This may be replaced when dependencies are built.
