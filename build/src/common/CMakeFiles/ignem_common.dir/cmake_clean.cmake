file(REMOVE_RECURSE
  "CMakeFiles/ignem_common.dir/histogram.cc.o"
  "CMakeFiles/ignem_common.dir/histogram.cc.o.d"
  "CMakeFiles/ignem_common.dir/logging.cc.o"
  "CMakeFiles/ignem_common.dir/logging.cc.o.d"
  "CMakeFiles/ignem_common.dir/rng.cc.o"
  "CMakeFiles/ignem_common.dir/rng.cc.o.d"
  "CMakeFiles/ignem_common.dir/stats.cc.o"
  "CMakeFiles/ignem_common.dir/stats.cc.o.d"
  "CMakeFiles/ignem_common.dir/units.cc.o"
  "CMakeFiles/ignem_common.dir/units.cc.o.d"
  "libignem_common.a"
  "libignem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
