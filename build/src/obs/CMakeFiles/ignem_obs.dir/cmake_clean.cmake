file(REMOVE_RECURSE
  "CMakeFiles/ignem_obs.dir/invariant_checker.cc.o"
  "CMakeFiles/ignem_obs.dir/invariant_checker.cc.o.d"
  "CMakeFiles/ignem_obs.dir/trace_diff.cc.o"
  "CMakeFiles/ignem_obs.dir/trace_diff.cc.o.d"
  "CMakeFiles/ignem_obs.dir/trace_recorder.cc.o"
  "CMakeFiles/ignem_obs.dir/trace_recorder.cc.o.d"
  "libignem_obs.a"
  "libignem_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
