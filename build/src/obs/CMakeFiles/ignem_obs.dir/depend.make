# Empty dependencies file for ignem_obs.
# This may be replaced when dependencies are built.
