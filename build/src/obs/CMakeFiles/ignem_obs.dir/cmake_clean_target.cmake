file(REMOVE_RECURSE
  "libignem_obs.a"
)
