
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/invariant_checker.cc" "src/obs/CMakeFiles/ignem_obs.dir/invariant_checker.cc.o" "gcc" "src/obs/CMakeFiles/ignem_obs.dir/invariant_checker.cc.o.d"
  "/root/repo/src/obs/trace_diff.cc" "src/obs/CMakeFiles/ignem_obs.dir/trace_diff.cc.o" "gcc" "src/obs/CMakeFiles/ignem_obs.dir/trace_diff.cc.o.d"
  "/root/repo/src/obs/trace_recorder.cc" "src/obs/CMakeFiles/ignem_obs.dir/trace_recorder.cc.o" "gcc" "src/obs/CMakeFiles/ignem_obs.dir/trace_recorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ignem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
