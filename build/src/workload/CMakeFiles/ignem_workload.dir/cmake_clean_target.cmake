file(REMOVE_RECURSE
  "libignem_workload.a"
)
