# Empty compiler generated dependencies file for ignem_workload.
# This may be replaced when dependencies are built.
