file(REMOVE_RECURSE
  "CMakeFiles/ignem_workload.dir/google_trace.cc.o"
  "CMakeFiles/ignem_workload.dir/google_trace.cc.o.d"
  "CMakeFiles/ignem_workload.dir/hive.cc.o"
  "CMakeFiles/ignem_workload.dir/hive.cc.o.d"
  "CMakeFiles/ignem_workload.dir/standalone.cc.o"
  "CMakeFiles/ignem_workload.dir/standalone.cc.o.d"
  "CMakeFiles/ignem_workload.dir/swim.cc.o"
  "CMakeFiles/ignem_workload.dir/swim.cc.o.d"
  "libignem_workload.a"
  "libignem_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
