# Empty dependencies file for ignem_core.
# This may be replaced when dependencies are built.
