file(REMOVE_RECURSE
  "libignem_core.a"
)
