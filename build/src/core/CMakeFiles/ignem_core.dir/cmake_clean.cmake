file(REMOVE_RECURSE
  "CMakeFiles/ignem_core.dir/baselines.cc.o"
  "CMakeFiles/ignem_core.dir/baselines.cc.o.d"
  "CMakeFiles/ignem_core.dir/hot_data.cc.o"
  "CMakeFiles/ignem_core.dir/hot_data.cc.o.d"
  "CMakeFiles/ignem_core.dir/ignem_master.cc.o"
  "CMakeFiles/ignem_core.dir/ignem_master.cc.o.d"
  "CMakeFiles/ignem_core.dir/ignem_slave.cc.o"
  "CMakeFiles/ignem_core.dir/ignem_slave.cc.o.d"
  "CMakeFiles/ignem_core.dir/migration_queue.cc.o"
  "CMakeFiles/ignem_core.dir/migration_queue.cc.o.d"
  "CMakeFiles/ignem_core.dir/testbed.cc.o"
  "CMakeFiles/ignem_core.dir/testbed.cc.o.d"
  "libignem_core.a"
  "libignem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
