# Empty dependencies file for ignem_mapreduce.
# This may be replaced when dependencies are built.
