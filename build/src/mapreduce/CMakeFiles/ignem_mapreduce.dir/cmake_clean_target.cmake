file(REMOVE_RECURSE
  "libignem_mapreduce.a"
)
