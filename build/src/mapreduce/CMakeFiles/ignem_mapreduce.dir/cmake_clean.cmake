file(REMOVE_RECURSE
  "CMakeFiles/ignem_mapreduce.dir/job_runner.cc.o"
  "CMakeFiles/ignem_mapreduce.dir/job_runner.cc.o.d"
  "libignem_mapreduce.a"
  "libignem_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
