file(REMOVE_RECURSE
  "CMakeFiles/ignem_storage.dir/bandwidth_resource.cc.o"
  "CMakeFiles/ignem_storage.dir/bandwidth_resource.cc.o.d"
  "CMakeFiles/ignem_storage.dir/buffer_cache.cc.o"
  "CMakeFiles/ignem_storage.dir/buffer_cache.cc.o.d"
  "CMakeFiles/ignem_storage.dir/device.cc.o"
  "CMakeFiles/ignem_storage.dir/device.cc.o.d"
  "libignem_storage.a"
  "libignem_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
