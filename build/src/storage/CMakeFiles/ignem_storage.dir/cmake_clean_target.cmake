file(REMOVE_RECURSE
  "libignem_storage.a"
)
