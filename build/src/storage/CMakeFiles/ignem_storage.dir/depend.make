# Empty dependencies file for ignem_storage.
# This may be replaced when dependencies are built.
