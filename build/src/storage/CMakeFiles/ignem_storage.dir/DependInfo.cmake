
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bandwidth_resource.cc" "src/storage/CMakeFiles/ignem_storage.dir/bandwidth_resource.cc.o" "gcc" "src/storage/CMakeFiles/ignem_storage.dir/bandwidth_resource.cc.o.d"
  "/root/repo/src/storage/buffer_cache.cc" "src/storage/CMakeFiles/ignem_storage.dir/buffer_cache.cc.o" "gcc" "src/storage/CMakeFiles/ignem_storage.dir/buffer_cache.cc.o.d"
  "/root/repo/src/storage/device.cc" "src/storage/CMakeFiles/ignem_storage.dir/device.cc.o" "gcc" "src/storage/CMakeFiles/ignem_storage.dir/device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ignem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ignem_common.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ignem_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
