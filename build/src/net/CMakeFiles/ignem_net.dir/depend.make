# Empty dependencies file for ignem_net.
# This may be replaced when dependencies are built.
