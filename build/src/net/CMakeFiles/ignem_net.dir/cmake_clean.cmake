file(REMOVE_RECURSE
  "CMakeFiles/ignem_net.dir/network.cc.o"
  "CMakeFiles/ignem_net.dir/network.cc.o.d"
  "libignem_net.a"
  "libignem_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
