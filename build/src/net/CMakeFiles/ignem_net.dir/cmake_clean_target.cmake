file(REMOVE_RECURSE
  "libignem_net.a"
)
