file(REMOVE_RECURSE
  "CMakeFiles/ignem_sim.dir/event_queue.cc.o"
  "CMakeFiles/ignem_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ignem_sim.dir/simulator.cc.o"
  "CMakeFiles/ignem_sim.dir/simulator.cc.o.d"
  "libignem_sim.a"
  "libignem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
