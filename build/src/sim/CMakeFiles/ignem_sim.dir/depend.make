# Empty dependencies file for ignem_sim.
# This may be replaced when dependencies are built.
