file(REMOVE_RECURSE
  "libignem_sim.a"
)
