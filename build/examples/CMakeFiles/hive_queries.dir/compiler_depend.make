# Empty compiler generated dependencies file for hive_queries.
# This may be replaced when dependencies are built.
